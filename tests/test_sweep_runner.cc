/**
 * @file
 * SweepRunner subsystem tests. The load-bearing property is
 * determinism: a parallel sweep must produce per-job results identical
 * to the same sweep run serially, independent of thread scheduling, and
 * the shared program-build cache must hand every configuration the very
 * same program object, assembled exactly once per (workload, scale).
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/baseline.hh"
#include "src/sim/report.hh"
#include "src/sim/request.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

namespace {

/** A small but non-trivial cross product: 3 workloads x 3 machines. */
sim::SweepSpec
smallSpec()
{
    sim::SweepSpec spec;
    spec.workloads({"untst", "mcf", "g721d"})
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized())
        .config("feedback", pipeline::MachineConfig::withOptimizer(
                                core::OptimizerConfig::feedbackOnly()));
    return spec;
}

} // namespace

// ---------------------------------------------------------------------------
// Determinism: parallel == serial, job for job.
// ---------------------------------------------------------------------------

TEST(SweepRunner, ParallelMatchesSerialJobForJob)
{
    sim::SweepRunner serial({1, nullptr});
    sim::SweepRunner parallel({4, nullptr});

    const auto s = serial.run(smallSpec());
    const auto p = parallel.run(smallSpec());

    ASSERT_EQ(s.size(), p.size());
    ASSERT_EQ(s.size(), 9u);
    for (size_t i = 0; i < s.size(); ++i) {
        const auto &a = s.all()[i];
        const auto &b = p.all()[i];
        // Results land in submission order regardless of scheduling.
        EXPECT_EQ(a.job.label, b.job.label);
        EXPECT_EQ(a.job.seed, b.job.seed);
        EXPECT_EQ(a.sim.instructions, b.sim.instructions) << a.job.label;
        EXPECT_EQ(a.sim.stats.cycles, b.sim.stats.cycles) << a.job.label;
        EXPECT_EQ(a.sim.stats.retired, b.sim.stats.retired);
        EXPECT_EQ(a.sim.stats.mispredicted, b.sim.stats.mispredicted);
        EXPECT_EQ(a.sim.stats.opt.earlyExecuted,
                  b.sim.stats.opt.earlyExecuted);
        EXPECT_EQ(a.sim.stats.opt.loadsRemoved,
                  b.sim.stats.opt.loadsRemoved);
        EXPECT_TRUE(b.sim.halted) << a.job.label;
    }
}

TEST(SweepRunner, ManyThreadsManyJobsStillDeterministic)
{
    // More threads than jobs, and jobs sharing one workload program.
    sim::SweepSpec spec;
    spec.workload("untst").config(
        "base", pipeline::MachineConfig::baseline());
    for (unsigned stages : {0u, 2u, 4u}) {
        auto oc = core::OptimizerConfig::full();
        oc.extraStages = stages;
        spec.config("stages" + std::to_string(stages),
                    pipeline::MachineConfig::withOptimizer(oc));
    }
    sim::SweepRunner a({8, nullptr}), b({2, nullptr});
    const auto ra = a.run(spec);
    const auto rb = b.run(spec);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra.all()[i].sim.stats.cycles,
                  rb.all()[i].sim.stats.cycles)
            << ra.all()[i].job.label;
}

// ---------------------------------------------------------------------------
// Batched multi-config execution: an engine-level knob that must be
// invisible in every result and artifact byte.
// ---------------------------------------------------------------------------

TEST(SweepRunner, BatchingOnOffProducesIdenticalResultsAndArtifacts)
{
    // batchJobs groups same-program jobs onto one warm worker session;
    // results must stay in submission order with bit-identical stats,
    // and the serialized artifact must not change by a byte — with any
    // thread count on either side.
    sim::ProgramCache cache;
    sim::SweepOptions batched(4, &cache);
    ASSERT_TRUE(batched.batchJobs) << "batching defaults on";
    sim::SweepOptions unbatched(1, &cache);
    unbatched.batchJobs = false;

    const auto b = sim::SweepRunner(batched).run(smallSpec());
    const auto u = sim::SweepRunner(unbatched).run(smallSpec());

    ASSERT_EQ(b.size(), u.size());
    ASSERT_EQ(b.size(), 9u);
    for (size_t i = 0; i < b.size(); ++i) {
        const auto &x = b.all()[i];
        const auto &y = u.all()[i];
        EXPECT_EQ(x.job.label, y.job.label) << i;
        EXPECT_EQ(x.job.seed, y.job.seed) << x.job.label;
        EXPECT_EQ(x.sim.instructions, y.sim.instructions) << x.job.label;
        EXPECT_EQ(x.sim.stats.cycles, y.sim.stats.cycles) << x.job.label;
        EXPECT_EQ(x.sim.stats.retired, y.sim.stats.retired);
        EXPECT_EQ(x.sim.stats.loadsForwardedFromStoreQ,
                  y.sim.stats.loadsForwardedFromStoreQ);
        EXPECT_EQ(x.sim.stats.opt.earlyExecuted,
                  y.sim.stats.opt.earlyExecuted);
        EXPECT_TRUE(x.sim.halted) << x.job.label;
    }
    EXPECT_EQ(sim::BenchArtifact::fromSweep(b).toJson(),
              sim::BenchArtifact::fromSweep(u).toJson())
        << "batching changed artifact bytes";
}

// ---------------------------------------------------------------------------
// Program cache: one build per (workload, scale), identical objects.
// ---------------------------------------------------------------------------

TEST(ProgramCache, BuildsOnceAndReturnsIdenticalPrograms)
{
    sim::ProgramCache cache;
    const auto p1 = cache.get("mcf", 1);
    const auto p2 = cache.get("mcf", 1);
    EXPECT_EQ(p1.get(), p2.get()) << "same (workload, scale) must be "
                                     "the same program object";
    EXPECT_EQ(cache.builds(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // A different scale is a different program.
    const auto p3 = cache.get("mcf", 2);
    EXPECT_NE(p1.get(), p3.get());
    EXPECT_EQ(cache.builds(), 2u);
    EXPECT_GT(p3->size(), 0u);
}

TEST(ProgramCache, SharedAcrossParallelSweepBuildsEachProgramOnce)
{
    sim::ProgramCache cache;
    sim::SweepRunner runner({4, &cache});
    const auto res = runner.run(smallSpec());
    ASSERT_EQ(res.size(), 9u);
    // 3 workloads x 3 configs, but only 3 programs assembled.
    EXPECT_EQ(cache.builds(), 3u);
    EXPECT_EQ(cache.hits(), 6u);
}

// ---------------------------------------------------------------------------
// Result access, labels, seeds, speedup helpers.
// ---------------------------------------------------------------------------

TEST(SweepResult, LabelKeyedAccessAndSpeedups)
{
    sim::SweepRunner runner({0, nullptr});
    const auto res = runner.run(smallSpec());

    const auto &r = res.at("mcf/opt");
    EXPECT_EQ(r.job.workload, "mcf");
    EXPECT_EQ(r.job.configName, "opt");
    EXPECT_EQ(r.suite, "SPECint");
    EXPECT_TRUE(r.sim.halted);
    EXPECT_GT(r.hostSeconds, 0.0);

    EXPECT_EQ(res.find("mcf/nope"), nullptr);
    EXPECT_EQ(res.cycles("mcf/opt"), r.sim.stats.cycles);

    const double s = res.speedup("mcf/base", "mcf/opt");
    EXPECT_GT(s, 0.5);
    EXPECT_LT(s, 3.0);
    EXPECT_DOUBLE_EQ(s, res.speedupOf("mcf", "opt", "base"));
}

TEST(SweepSpec, CrossProductAndDerivedFields)
{
    const auto jobs = smallSpec().jobs();
    ASSERT_EQ(jobs.size(), 9u);
    EXPECT_EQ(jobs[0].label, "untst/base");
    EXPECT_EQ(jobs[1].label, "untst/opt");
    EXPECT_EQ(jobs[8].label, "g721d/feedback");
    // Scale 0 means "defaultScale * envScale()", resolved at run time.
    EXPECT_EQ(jobs[0].scale, 0u);
    EXPECT_EQ(jobs[0].seed, 0u);
}

TEST(SweepRunner, SeedsAreDeterministicPerLabelAndDistinct)
{
    sim::SweepRunner r1({1, nullptr}), r2({4, nullptr});
    const auto a = r1.run(smallSpec());
    const auto b = r2.run(smallSpec());
    std::set<uint64_t> seeds;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NE(a.all()[i].job.seed, 0u);
        EXPECT_EQ(a.all()[i].job.seed, b.all()[i].job.seed)
            << "seed must depend on the job, not on thread count";
        seeds.insert(a.all()[i].job.seed);
    }
    EXPECT_EQ(seeds.size(), a.size()) << "per-job seeds must differ";
}

TEST(SweepRunner, ExplicitProgramJobsBypassTheRegistry)
{
    const auto &w = workloads::workloadByName("untst");
    const auto prog =
        std::make_shared<const assembler::Program>(w.build(1));
    sim::SimJob base, opt;
    base.label = "b";
    base.program = prog;
    base.config = pipeline::MachineConfig::baseline();
    opt.label = "o";
    opt.program = prog;
    opt.config = pipeline::MachineConfig::optimized();

    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run({base, opt});
    EXPECT_EQ(res.at("b").sim.instructions,
              res.at("o").sim.instructions);
    EXPECT_EQ(runner.cache().builds(), 0u);

    // sim::speedup() is itself a two-job sweep over the same program.
    const double s =
        sim::speedup(*prog, pipeline::MachineConfig::baseline(),
                     pipeline::MachineConfig::optimized());
    EXPECT_DOUBLE_EQ(s, res.speedup("b", "o"));
}

TEST(SweepRunner, PrebuiltProgramJobsGetAFullySpecifiedScale)
{
    // normalize() used to leave scale == 0 for jobs carrying a
    // pre-built program, so their seed derived from scale 0 and the
    // artifact/cache records carried an unspecified scale. A bare
    // program defaults to envScale(), like a defaultScale-1 registry
    // job.
    const auto &w = workloads::workloadByName("untst");
    const auto prog =
        std::make_shared<const assembler::Program>(w.build(1));

    sim::SimJob j;
    j.label = "prebuilt";
    j.program = prog;
    j.config = pipeline::MachineConfig::baseline();

    unsetenv("CONOPT_SCALE");
    sim::SweepRunner r1({1, nullptr});
    const auto res1 = r1.run({j});
    EXPECT_EQ(res1.at("prebuilt").job.scale, 1u);
    EXPECT_NE(res1.at("prebuilt").job.seed, 0u);

    setenv("CONOPT_SCALE", "3", 1);
    sim::SweepRunner r2({1, nullptr});
    const auto res2 = r2.run({j});
    unsetenv("CONOPT_SCALE");
    EXPECT_EQ(res2.at("prebuilt").job.scale, 3u);
    // The scale feeds the seed derivation, so the seed moves with it.
    EXPECT_NE(res2.at("prebuilt").job.seed,
              res1.at("prebuilt").job.seed);

    // An explicit scale is left alone.
    j.scale = 5;
    sim::SweepRunner r3({1, nullptr});
    EXPECT_EQ(r3.run({j}).at("prebuilt").job.scale, 5u);
}

// ---------------------------------------------------------------------------
// envScale handling (CONOPT_SCALE moved into the sweep subsystem).
// ---------------------------------------------------------------------------

TEST(EnvScale, DefaultsToOneAndReadsEnvironment)
{
    unsetenv("CONOPT_SCALE");
    EXPECT_EQ(sim::envScale(), 1u);
    setenv("CONOPT_SCALE", "3", 1);
    EXPECT_EQ(sim::envScale(), 3u);
    setenv("CONOPT_SCALE", "0", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    unsetenv("CONOPT_SCALE");
}

TEST(EnvScale, GarbageNegativeAndHugeValuesAreSafe)
{
    setenv("CONOPT_SCALE", "banana", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    setenv("CONOPT_SCALE", "", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    setenv("CONOPT_SCALE", "-4", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    // Whitespace-prefixed negatives must not wrap through strtoull.
    setenv("CONOPT_SCALE", "\n-5", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    // Beyond-cap and beyond-uint64 values clamp instead of wrapping.
    setenv("CONOPT_SCALE", "4294967297", 1);
    EXPECT_EQ(sim::envScale(), sim::kMaxEnvScale);
    setenv("CONOPT_SCALE", "99999999999999999999999999", 1);
    EXPECT_EQ(sim::envScale(), sim::kMaxEnvScale);
    unsetenv("CONOPT_SCALE");
}

TEST(EnvScale, TrailingGarbageFallsBackToDefaultNotThePrefix)
{
    // "8x" used to parse as 8: the documented contract is garbage ->
    // default, and a typo'd scale silently running 8x the work (or a
    // trailing "," silently dropping a list) is exactly the failure
    // mode the contract exists for.
    setenv("CONOPT_SCALE", "8x", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    setenv("CONOPT_SCALE", "4,", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    setenv("CONOPT_SCALE", "2 4", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    setenv("CONOPT_SCALE", "3.5", 1);
    EXPECT_EQ(sim::envScale(), 1u);
    // Trailing (and leading) whitespace is not garbage.
    setenv("CONOPT_SCALE", " 7 \n", 1);
    EXPECT_EQ(sim::envScale(), 7u);
    unsetenv("CONOPT_SCALE");

    setenv("CONOPT_THREADS", "4,", 1);
    EXPECT_EQ(sim::envThreads(), 0u);
    setenv("CONOPT_THREADS", "6x2", 1);
    EXPECT_EQ(sim::envThreads(), 0u);
    setenv("CONOPT_THREADS", "6 ", 1);
    EXPECT_EQ(sim::envThreads(), 6u);
    unsetenv("CONOPT_THREADS");
}

TEST(EnvThreads, EdgeCases)
{
    unsetenv("CONOPT_THREADS");
    EXPECT_EQ(sim::envThreads(), 0u);
    setenv("CONOPT_THREADS", "6", 1);
    EXPECT_EQ(sim::envThreads(), 6u);
    // 0 and nonsense both mean "use hardware concurrency".
    setenv("CONOPT_THREADS", "0", 1);
    EXPECT_EQ(sim::envThreads(), 0u);
    setenv("CONOPT_THREADS", "not-a-number", 1);
    EXPECT_EQ(sim::envThreads(), 0u);
    setenv("CONOPT_THREADS", "-2", 1);
    EXPECT_EQ(sim::envThreads(), 0u);
    setenv("CONOPT_THREADS", "18446744073709551616", 1);
    EXPECT_EQ(sim::envThreads(), sim::kMaxEnvThreads);
    unsetenv("CONOPT_THREADS");
}

// ---------------------------------------------------------------------------
// speedup() guards: no division by zero, no fatal on missing labels.
// ---------------------------------------------------------------------------

TEST(SweepResult, SpeedupGuardsZeroCycleAndMissingDenominators)
{
    sim::SweepResult res;
    sim::JobResult a, b;
    a.job.label = "a";
    a.sim.stats.cycles = 1000;
    b.job.label = "zero";
    b.sim.stats.cycles = 0;
    res.add(std::move(a));
    res.add(std::move(b));

    EXPECT_DOUBLE_EQ(res.speedup("a", "zero"), 0.0);
    EXPECT_DOUBLE_EQ(res.speedup("a", "no-such-label"), 0.0);
    EXPECT_DOUBLE_EQ(res.speedup("no-such-label", "a"), 0.0);
    // Zero cycles in the *numerator* is well-defined (speedup 0).
    EXPECT_DOUBLE_EQ(res.speedup("zero", "a"), 0.0);
}

TEST(EnvScale, AppliedDuringJobNormalization)
{
    setenv("CONOPT_SCALE", "2", 1);
    sim::SweepSpec spec;
    spec.workload("untst").config(
        "base", pipeline::MachineConfig::baseline());
    sim::SweepRunner runner({1, nullptr});
    const auto res = runner.run(spec);
    unsetenv("CONOPT_SCALE");
    const auto &w = workloads::workloadByName("untst");
    EXPECT_EQ(res.at("untst/base").job.scale, 2 * w.defaultScale);
}

// ---------------------------------------------------------------------------
// Aggregation helpers (moved from bench_common to the pipeline layer).
// ---------------------------------------------------------------------------

TEST(StatsAggregate, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(pipeline::geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(pipeline::mean({}), 0.0);
    EXPECT_NEAR(pipeline::geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(pipeline::mean({2.0, 8.0}), 5.0);
}

TEST(StatsAggregate, AccumulatorSumsRuns)
{
    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run(smallSpec());
    pipeline::StatsAccumulator acc;
    uint64_t cycles = 0;
    for (const char *wl : {"untst", "mcf", "g721d"}) {
        const auto &s =
            res.at(sim::SweepSpec::labelFor(wl, "opt")).sim.stats;
        acc.add(s);
        cycles += s.cycles;
    }
    EXPECT_EQ(acc.runs(), 3u);
    EXPECT_EQ(acc.total().cycles, cycles);
    EXPECT_GT(acc.total().opt.earlyExecuted, 0u);
}

// ---------------------------------------------------------------------------
// Reporters produce sane output.
// ---------------------------------------------------------------------------

TEST(Reporters, CsvHasHeaderAndOneRowPerJob)
{
    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run(smallSpec());

    char buf[16384];
    std::FILE *f = fmemopen(buf, sizeof(buf), "w");
    ASSERT_NE(f, nullptr);
    sim::CsvReporter().report(res, f);
    std::fclose(f);

    const std::string out(buf);
    size_t lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 1 + res.size());
    EXPECT_NE(out.find("label,workload,suite,config"), std::string::npos);
    EXPECT_NE(out.find("mcf/opt,mcf,SPECint,opt"), std::string::npos);
}

TEST(Reporters, TableContainsSuiteAndValues)
{
    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run(smallSpec());

    char buf[16384];
    std::FILE *f = fmemopen(buf, sizeof(buf), "w");
    ASSERT_NE(f, nullptr);
    sim::TableOptions t;
    t.baselineConfig = "base";
    t.configs = {"opt", "feedback"};
    t.rows = sim::TableOptions::Rows::PerSuite;
    sim::TableReporter(t).report(res, f);
    std::fclose(f);

    const std::string out(buf);
    EXPECT_NE(out.find("SPECint"), std::string::npos);
    EXPECT_NE(out.find("mediabench"), std::string::npos);
    EXPECT_NE(out.find("opt"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SweepRequest: the one sweep-run schema (src/sim/request.hh).
// ---------------------------------------------------------------------------

TEST(SweepRequest, EncodeDecodeRoundTripsLosslessly)
{
    sim::SweepRequest req;
    req.bench = "fig6_speedup";
    req.priority = 3;
    req.run.shard = {1, 4};
    req.run.scale = 2;
    req.run.threads = 8;
    req.run.ipcSampleInterval = 1000000;
    req.run.perf = true;
    req.run.emitArtifact = false;
    // Doubles with no exact binary representation: %.17g must carry
    // them bit-for-bit.
    req.run.tolerance = 0.030000000000000002;

    const std::string json = req.encodeJson();
    sim::SweepRequest back;
    std::string err;
    ASSERT_TRUE(sim::SweepRequest::decode(json, &back, &err)) << err;
    EXPECT_EQ(back.bench, req.bench);
    EXPECT_EQ(back.priority, req.priority);
    EXPECT_EQ(back.run.shard.index, 1u);
    EXPECT_EQ(back.run.shard.count, 4u);
    EXPECT_EQ(back.run.scale, 2u);
    EXPECT_EQ(back.run.threads, 8u);
    EXPECT_EQ(back.run.ipcSampleInterval, 1000000u);
    EXPECT_TRUE(back.run.perf);
    EXPECT_FALSE(back.run.emitArtifact);
    EXPECT_EQ(back.run.tolerance, req.run.tolerance) << "bit-exact";
    // Canonical form: re-encoding reproduces the same bytes, so the
    // fingerprint is stable across the wire.
    EXPECT_EQ(back.encodeJson(), json);
    EXPECT_EQ(back.fingerprint(), req.fingerprint());
}

TEST(SweepRequest, FingerprintSeparatesDistinctRequests)
{
    sim::SweepRequest a;
    a.bench = "table1_workloads";
    sim::SweepRequest b = a;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.run.scale = 2;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b = a;
    b.run.shard = {1, 2};
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b = a;
    b.priority = 1;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(SweepRequest, DecodeRejectsMalformedDocuments)
{
    sim::SweepRequest ok;
    ok.bench = "table1_workloads";
    const std::string good = ok.encodeJson();

    auto rejects = [](const std::string &json, const char *why) {
        sim::SweepRequest out;
        std::string err;
        EXPECT_FALSE(sim::SweepRequest::decode(json, &out, &err)) << why;
        EXPECT_FALSE(err.empty()) << why;
    };
    rejects("", "empty");
    rejects("{", "truncated JSON");
    rejects("[1]", "not an object");
    rejects("{\"schema\":\"conopt-sweep-request\",\"version\":1}",
            "missing bench");
    {
        std::string wrongSchema = good;
        const size_t at = wrongSchema.find("conopt-sweep-request");
        ASSERT_NE(at, std::string::npos);
        wrongSchema.replace(at, 20, "conopt-other-schema!");
        rejects(wrongSchema, "wrong schema tag");
    }
    {
        std::string wrongVersion = good;
        const size_t at = wrongVersion.find("\"version\":1");
        ASSERT_NE(at, std::string::npos);
        wrongVersion.replace(at, 11, "\"version\":9");
        rejects(wrongVersion, "future version");
    }
}
