/**
 * @file
 * Distribution-statistics tests: the accumulators behind the fleet
 * observability surface and the per-interval IPC sampling path.
 *
 * The load-bearing properties:
 *   - ReservoirAccumulator is deterministic for a fixed (seed, stream)
 *     and keeps the first `capacity` values verbatim;
 *   - PercentileAccumulator's lazy-sort cache survives interleaved
 *     add/query sequences, and min()/max()/clamping follow the
 *     documented contract;
 *   - IPC sampling never perturbs simulated state: SimStats are
 *     bit-identical with sampling on or off, and — because retirement
 *     cycles are identical with fast-forward on or off — the sampled
 *     reservoirs match across fast-forward modes too;
 *   - the sweep-level distribution block recomputed after a shard
 *     merge equals the unsharded run's exactly (percentiles are
 *     order-independent over identical pooled multisets);
 *   - artifacts without sampling carry no distribution fields and
 *     reserialize byte-identically, and compareArtifacts never gates
 *     on the distribution fields.
 */

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/pipeline/machine_config.hh"
#include "src/pipeline/stats_aggregate.hh"
#include "src/sim/baseline.hh"
#include "src/sim/session.hh"
#include "src/sim/sweep.hh"
#include "src/workloads/workload.hh"

using namespace conopt;
namespace fs = std::filesystem;

namespace {

sim::ProgramPtr
programOf(const std::string &workload, unsigned scale = 1)
{
    const auto &w = workloads::workloadByName(workload);
    return std::make_shared<const assembler::Program>(w.build(scale));
}

/** A small but non-trivial cross product: 3 workloads x 2 machines. */
sim::SweepSpec
smallSpec()
{
    sim::SweepSpec spec;
    spec.workloads({"untst", "mcf", "g721d"})
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());
    return spec;
}

/** Scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("conopt_test_stats_dist_" +
                std::to_string(uint64_t(::getpid())) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }

    static unsigned &
    counter()
    {
        static unsigned c = 0;
        return c;
    }
};

} // namespace

// ---------------------------------------------------------------------------
// PercentileAccumulator: nearest-rank contract and the lazy-sort cache.
// ---------------------------------------------------------------------------

TEST(PercentileAccumulator, NearestRankOnKnownValues)
{
    pipeline::PercentileAccumulator acc;
    // Insertion order must not matter.
    for (double x : {7.0, 1.0, 10.0, 4.0, 2.0, 9.0, 5.0, 3.0, 8.0, 6.0})
        acc.add(x);
    ASSERT_EQ(acc.count(), 10u);
    EXPECT_EQ(acc.percentile(50), 5.0);  // rank ceil(5.0) = 5
    EXPECT_EQ(acc.percentile(10), 1.0);  // rank ceil(1.0) = 1
    EXPECT_EQ(acc.percentile(95), 10.0); // rank ceil(9.5) = 10
    EXPECT_EQ(acc.percentile(99), 10.0);
    EXPECT_EQ(acc.percentile(100), 10.0);
    EXPECT_EQ(acc.min(), 1.0);
    EXPECT_EQ(acc.max(), 10.0);
    // The documented clamp: p <= 0 returns min(), p > 100 returns max().
    EXPECT_EQ(acc.percentile(0), acc.min());
    EXPECT_EQ(acc.percentile(-5), acc.min());
    EXPECT_EQ(acc.percentile(200), acc.max());
}

TEST(PercentileAccumulator, LazySortSurvivesInterleavedAddsAndQueries)
{
    pipeline::PercentileAccumulator acc;
    for (double x : {3.0, 1.0, 2.0})
        acc.add(x);
    // Query sorts the cache...
    EXPECT_EQ(acc.percentile(50), 2.0);
    EXPECT_EQ(acc.max(), 3.0);
    // ...and a later add must dirty it again, not append past a sorted
    // prefix that queries then misread.
    acc.add(0.5);
    EXPECT_EQ(acc.min(), 0.5);
    EXPECT_EQ(acc.percentile(50), 1.0); // {0.5,1,2,3}: rank ceil(2.0) = 2
    acc.add(10.0);
    EXPECT_EQ(acc.max(), 10.0);
    EXPECT_EQ(acc.percentile(50), 2.0); // {0.5,1,2,3,10}: rank 3
}

TEST(PercentileAccumulator, EmptyReturnsZeroEverywhere)
{
    pipeline::PercentileAccumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.percentile(50), 0.0);
    EXPECT_EQ(acc.min(), 0.0);
    EXPECT_EQ(acc.max(), 0.0);
}

// ---------------------------------------------------------------------------
// ReservoirAccumulator: determinism and the bounded-memory contract.
// ---------------------------------------------------------------------------

TEST(ReservoirAccumulator, KeepsFirstSamplesVerbatimBelowCapacity)
{
    pipeline::ReservoirAccumulator acc(8, /*seed=*/1);
    for (double x : {5.0, 3.0, 9.0})
        acc.add(x);
    EXPECT_EQ(acc.seen(), 3u);
    EXPECT_EQ(acc.samples(), (std::vector<double>{5.0, 3.0, 9.0}));
}

TEST(ReservoirAccumulator, DeterministicForFixedSeedAndStream)
{
    const auto fill = [](uint64_t seed) {
        pipeline::ReservoirAccumulator acc(16, seed);
        for (int i = 0; i < 1000; ++i)
            acc.add(double(i % 97) * 0.25);
        return acc;
    };
    const auto a = fill(42), b = fill(42), c = fill(43);
    EXPECT_EQ(a.seen(), 1000u);
    EXPECT_EQ(a.samples().size(), 16u) << "reservoir must stay bounded";
    EXPECT_EQ(a.samples(), b.samples())
        << "same seed + same stream must reproduce the same reservoir";
    EXPECT_NE(a.samples(), c.samples())
        << "a different seed should draw different replacement slots";
}

TEST(ReservoirAccumulator, PercentileMatchesExactAccumulatorOverReservoir)
{
    pipeline::ReservoirAccumulator acc(32, 7);
    for (int i = 0; i < 500; ++i)
        acc.add(double((i * 31) % 101));
    pipeline::PercentileAccumulator exact;
    for (double x : acc.samples())
        exact.add(x);
    for (double p : {50.0, 95.0, 99.0, 100.0})
        EXPECT_EQ(acc.percentile(p), exact.percentile(p)) << p;
}

// ---------------------------------------------------------------------------
// MovingAverage: trailing-window mean.
// ---------------------------------------------------------------------------

TEST(MovingAverage, AveragesTheTrailingWindowOnly)
{
    pipeline::MovingAverage ma(4);
    EXPECT_TRUE(ma.empty());
    EXPECT_EQ(ma.value(), 0.0);
    ma.add(1.0);
    ma.add(2.0);
    ma.add(3.0);
    EXPECT_DOUBLE_EQ(ma.value(), 2.0); // partial window: mean of 3
    ma.add(4.0);
    EXPECT_DOUBLE_EQ(ma.value(), 2.5);
    ma.add(5.0); // evicts the 1.0
    EXPECT_DOUBLE_EQ(ma.value(), 3.5);
    EXPECT_EQ(ma.count(), 5u);
    EXPECT_EQ(ma.window(), 4u);
    ma.clear();
    EXPECT_TRUE(ma.empty());
    EXPECT_EQ(ma.value(), 0.0);
}

// ---------------------------------------------------------------------------
// IPC sampling: host-side observability, never simulated-state drift.
// ---------------------------------------------------------------------------

TEST(IpcSampling, NeverPerturbsSimStatsAndMatchesAcrossFastForward)
{
    const std::vector<std::string> workloads{"mcf", "untst"};
    const std::vector<std::pair<const char *, pipeline::MachineConfig>>
        models{{"base", pipeline::MachineConfig::baseline()},
               {"opt", pipeline::MachineConfig::optimized()}};

    sim::SimSession plain; // sampling off (the default)
    sim::SimSession sampledOn, sampledOff;
    sampledOn.setIpcSampling(500, 64, /*seed=*/9);
    sampledOff.setIpcSampling(500, 64, /*seed=*/9);
    sampledOff.setFastForward(false);

    bool sawSamples = false;
    for (const auto &wl : workloads) {
        const auto program = programOf(wl);
        for (const auto &[name, cfg] : models) {
            const std::string what = wl + "/" + std::string(name);
            const auto ref = plain.simulate(program, cfg);
            const auto on = sampledOn.simulate(program, cfg);
            const auto off = sampledOff.simulate(program, cfg);

            // Sampling must be invisible in the simulated results.
            EXPECT_EQ(ref.stats.cycles, on.stats.cycles) << what;
            EXPECT_EQ(ref.stats.retired, on.stats.retired) << what;
            EXPECT_EQ(ref.stats.mispredicted, on.stats.mispredicted)
                << what;
            EXPECT_EQ(ref.stats.dl1Misses, on.stats.dl1Misses) << what;
            EXPECT_EQ(ref.stats.opt.earlyExecuted,
                      on.stats.opt.earlyExecuted)
                << what;
            EXPECT_EQ(ref.stats.mbc.hits, on.stats.mbc.hits) << what;
            EXPECT_EQ(ref.instructions, on.instructions) << what;
            EXPECT_EQ(ref.halted, on.halted) << what;
            EXPECT_EQ(ref.ipcSamplesSeen, 0u)
                << "sampling-off runs must carry no samples";
            EXPECT_TRUE(ref.ipcSamples.empty());

            // Fast-forward on/off retire on identical cycles, so the
            // per-interval IPC samples must be bit-identical too.
            EXPECT_EQ(on.stats.cycles, off.stats.cycles) << what;
            EXPECT_EQ(on.ipcSamplesSeen, off.ipcSamplesSeen) << what;
            EXPECT_EQ(on.ipcSamples, off.ipcSamples) << what;
            if (!on.ipcSamples.empty())
                sawSamples = true;
        }
    }
    EXPECT_TRUE(sawSamples)
        << "no run produced samples: the equivalence tested nothing";
}

TEST(IpcSampling, RepeatedRunsOnAWarmSessionReproduceTheReservoir)
{
    const auto program = programOf("g721d");
    const auto cfg = pipeline::MachineConfig::optimized();
    sim::SimSession s;
    s.setIpcSampling(300, 32, /*seed=*/5);
    const auto a = s.simulate(program, cfg);
    const auto b = s.simulate(program, cfg);
    ASSERT_FALSE(a.ipcSamples.empty());
    EXPECT_EQ(a.ipcSamplesSeen, b.ipcSamplesSeen);
    EXPECT_EQ(a.ipcSamples, b.ipcSamples)
        << "reset() must re-arm the reservoir, not accumulate across runs";
}

// ---------------------------------------------------------------------------
// Sweep-level distribution block: shard merge == unsharded, exactly.
// ---------------------------------------------------------------------------

TEST(ShardedDistribution, MergedShardPercentilesMatchUnsharded)
{
    const auto spec = smallSpec();
    sim::SweepOptions base;
    base.run.threads = 2;
    base.run.ipcSampleInterval = 200;
    base.ipcReservoirCapacity = 32;

    sim::SweepRunner full(base);
    const auto res = full.run(spec);
    auto artFull = sim::BenchArtifact::fromSweep(res);
    artFull.bench = "dist_test";
    artFull.addIpcSamples(res);
    artFull.addDistributionFromJobs();
    ASSERT_TRUE(artFull.ipcDist.measured());
    EXPECT_FALSE(artFull.hostDist.measured())
        << "no addPerf() ran, so host seconds must stay unmeasured";

    TempDir tmp;
    std::string err;
    for (unsigned i = 0; i < 2; ++i) {
        sim::SweepOptions o = base;
        o.run.shard = {i, 2};
        sim::SweepRunner part(o);
        const auto shardRes = part.run(spec);
        auto shard = sim::BenchArtifact::fromSweep(shardRes);
        shard.bench = "dist_test";
        shard.addIpcSamples(shardRes);
        // Per the merge contract, shards defer the distribution block.
        ASSERT_TRUE(shard.save(
            tmp.file("shard" + std::to_string(i) + ".json"), &err))
            << err;
    }

    sim::BenchArtifact merged;
    ASSERT_TRUE(sim::loadArtifactOrShards(tmp.path.string(), &merged,
                                          &err))
        << err;
    ASSERT_EQ(merged.jobs.size(), artFull.jobs.size());

    // The per-job reservoirs are seeded with job.seed, which the shard
    // partition preserves, so shard samples equal unsharded samples
    // label for label...
    for (const auto &j : artFull.jobs) {
        const sim::ArtifactJob *m = nullptr;
        for (const auto &k : merged.jobs)
            if (k.label == j.label)
                m = &k;
        ASSERT_NE(m, nullptr) << j.label;
        EXPECT_EQ(m->ipcSamplesSeen, j.ipcSamplesSeen) << j.label;
        EXPECT_EQ(m->ipcSamples, j.ipcSamples) << j.label;
        EXPECT_EQ(m->ipcP50, j.ipcP50) << j.label;
        EXPECT_EQ(m->ipcP95, j.ipcP95) << j.label;
        EXPECT_EQ(m->ipcP99, j.ipcP99) << j.label;
    }
    // ...and the post-merge recompute pools identical multisets, so the
    // sweep-level block is exactly the unsharded one.
    EXPECT_TRUE(merged.ipcDist == artFull.ipcDist);
    EXPECT_TRUE(merged.hostDist == artFull.hostDist);
}

// ---------------------------------------------------------------------------
// Artifact compatibility: the fields are optional and never gated.
// ---------------------------------------------------------------------------

TEST(ArtifactCompat, UnsampledArtifactsCarryNoDistributionFields)
{
    sim::SweepRunner runner({2, nullptr});
    const auto res = runner.run(smallSpec());
    auto art = sim::BenchArtifact::fromSweep(res);
    art.bench = "dist_test";
    art.addGeomeans(res, "base", {"opt"});
    art.addIpcSamples(res);       // no samples recorded: must be a no-op
    art.addDistributionFromJobs(); // nothing measured: must be a no-op

    const std::string json = art.toJson();
    EXPECT_EQ(json.find("ipc_samples"), std::string::npos);
    EXPECT_EQ(json.find("distribution"), std::string::npos);

    // Parse -> reserialize is byte-identical: the schema did not move
    // under existing artifacts.
    sim::BenchArtifact back;
    std::string err;
    ASSERT_TRUE(sim::parseArtifact(json, &back, &err)) << err;
    EXPECT_EQ(back.toJson(), json);
}

TEST(ArtifactCompat, SampledArtifactsRoundTripByteIdentically)
{
    sim::SweepOptions o;
    o.run.threads = 2;
    o.run.ipcSampleInterval = 200;
    o.ipcReservoirCapacity = 16;
    sim::SweepRunner runner(o);
    const auto res = runner.run(smallSpec());
    auto art = sim::BenchArtifact::fromSweep(res);
    art.bench = "dist_test";
    art.addIpcSamples(res);
    art.addDistributionFromJobs();

    const std::string json = art.toJson();
    EXPECT_NE(json.find("ipc_samples"), std::string::npos);
    EXPECT_NE(json.find("\"distribution\""), std::string::npos);

    sim::BenchArtifact back;
    std::string err;
    ASSERT_TRUE(sim::parseArtifact(json, &back, &err)) << err;
    EXPECT_EQ(back.toJson(), json);
}

TEST(ArtifactCompat, CompareArtifactsIgnoresDistributionFields)
{
    // The same sweep with and without sampling must gate clean at
    // tolerance 0 in both directions: distribution fields are
    // observability, never science.
    const auto spec = smallSpec();
    sim::SweepRunner plain({2, nullptr});
    auto artPlain = sim::BenchArtifact::fromSweep(plain.run(spec));
    artPlain.bench = "dist_test";

    sim::SweepOptions o;
    o.run.threads = 2;
    o.run.ipcSampleInterval = 200;
    sim::SweepRunner sampled(o);
    const auto res = sampled.run(spec);
    auto artSampled = sim::BenchArtifact::fromSweep(res);
    artSampled.bench = "dist_test";
    artSampled.addIpcSamples(res);
    artSampled.addDistributionFromJobs();

    EXPECT_TRUE(sim::compareArtifacts(artPlain, artSampled, {0.0}).ok);
    EXPECT_TRUE(sim::compareArtifacts(artSampled, artPlain, {0.0}).ok);
}
