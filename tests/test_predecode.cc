/**
 * @file
 * Pre-decode trace cache tests.
 *
 * The predecode layer (src/arch/predecode.*) is a host-speed cache of
 * the static half of Emulator::step(); it must be invisible in the
 * simulated results. These tests pin the on/off bit-exactness across
 * workloads and machine models, the cross-program correctness of the
 * shared process-wide cache through one warm session, the
 * allocation-free warm path, and the content-key/flattening basics.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/arch/predecode.hh"
#include "src/pipeline/machine_config.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/sim/session.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

// ---------------------------------------------------------------------------
// Counting global allocator (for the zero-allocation warm-hit test),
// same pattern as tests/test_session.cc: replacing the ordinary
// new/delete pair is enough, the other forms funnel through these.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_newCalls{0};
} // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair; it cannot see that the replaced operator new is malloc-backed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace {

sim::ProgramPtr
programOf(const std::string &workload, unsigned scale = 1)
{
    const auto &w = workloads::workloadByName(workload);
    return std::make_shared<const assembler::Program>(w.build(scale));
}

/** Every SimStats counter that feeds artifacts, tables, or figures
 *  (the tests/test_wakeup.cc set). */
void
expectSameStats(const pipeline::SimStats &x, const pipeline::SimStats &y,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(x.cycles, y.cycles);
    EXPECT_EQ(x.retired, y.retired);
    EXPECT_EQ(x.halted, y.halted);
    EXPECT_EQ(x.branches, y.branches);
    EXPECT_EQ(x.condBranches, y.condBranches);
    EXPECT_EQ(x.mispredicted, y.mispredicted);
    EXPECT_EQ(x.earlyResolvedBranches, y.earlyResolvedBranches);
    EXPECT_EQ(x.earlyRecoveredMispredicts, y.earlyRecoveredMispredicts);
    EXPECT_EQ(x.btbResteers, y.btbResteers);
    EXPECT_EQ(x.loads, y.loads);
    EXPECT_EQ(x.stores, y.stores);
    EXPECT_EQ(x.loadsForwardedFromStoreQ, y.loadsForwardedFromStoreQ);
    EXPECT_EQ(x.mbcMisspecFlushes, y.mbcMisspecFlushes);
    EXPECT_EQ(x.dl1Hits, y.dl1Hits);
    EXPECT_EQ(x.dl1Misses, y.dl1Misses);
    EXPECT_EQ(x.il1Misses, y.il1Misses);
    EXPECT_EQ(x.fetchStallMispredict, y.fetchStallMispredict);
    EXPECT_EQ(x.fetchStallIcache, y.fetchStallIcache);
    EXPECT_EQ(x.fetchStallQueueFull, y.fetchStallQueueFull);
    EXPECT_EQ(x.renameStallRob, y.renameStallRob);
    EXPECT_EQ(x.renameStallDispatchQ, y.renameStallDispatchQ);
    EXPECT_EQ(x.renameStallPregs, y.renameStallPregs);
    EXPECT_EQ(x.dispatchStallSched, y.dispatchStallSched);
    EXPECT_EQ(x.opt.instsRenamed, y.opt.instsRenamed);
    EXPECT_EQ(x.opt.earlyExecuted, y.opt.earlyExecuted);
    EXPECT_EQ(x.opt.movesEliminated, y.opt.movesEliminated);
    EXPECT_EQ(x.opt.branchesResolved, y.opt.branchesResolved);
    EXPECT_EQ(x.opt.memOps, y.opt.memOps);
    EXPECT_EQ(x.opt.loads, y.opt.loads);
    EXPECT_EQ(x.opt.addrKnown, y.opt.addrKnown);
    EXPECT_EQ(x.opt.loadsRemoved, y.opt.loadsRemoved);
    EXPECT_EQ(x.opt.loadsSynthesized, y.opt.loadsSynthesized);
    EXPECT_EQ(x.opt.mbcMisspecs, y.opt.mbcMisspecs);
    EXPECT_EQ(x.opt.symRewrites, y.opt.symRewrites);
    EXPECT_EQ(x.opt.depthBlocked, y.opt.depthBlocked);
    EXPECT_EQ(x.opt.strengthReductions, y.opt.strengthReductions);
    EXPECT_EQ(x.opt.branchInferences, y.opt.branchInferences);
    EXPECT_EQ(x.mbc.lookups, y.mbc.lookups);
    EXPECT_EQ(x.mbc.hits, y.mbc.hits);
    EXPECT_EQ(x.mbc.inserts, y.mbc.inserts);
    EXPECT_EQ(x.mbc.evictions, y.mbc.evictions);
    EXPECT_EQ(x.mbc.invalidations, y.mbc.invalidations);
    EXPECT_EQ(x.mbc.flushes, y.mbc.flushes);
}

struct NamedConfig
{
    const char *name;
    pipeline::MachineConfig cfg;
};

std::vector<NamedConfig>
machineModels()
{
    return {
        {"baseline", pipeline::MachineConfig::baseline()},
        {"optimized", pipeline::MachineConfig::optimized()},
        {"fetchBound", pipeline::MachineConfig::fetchBound(true)},
        {"execBound", pipeline::MachineConfig::execBound(true)},
    };
}

} // namespace

// ---------------------------------------------------------------------------
// Content key and flattening basics
// ---------------------------------------------------------------------------

TEST(PredecodeProgram, ContentKeyDistinguishesProgramsAndIsStable)
{
    const auto mcf1 = programOf("mcf");
    const auto gcc1 = programOf("gcc");
    const auto mcf2 = programOf("mcf", 2);

    const uint64_t kMcf1 = arch::programContentKey(*mcf1);
    // Rebuilding the same (workload, scale) yields the same bytes and
    // therefore the same key; different programs and different scales
    // land on different keys (that IS the invalidation mechanism).
    EXPECT_EQ(arch::programContentKey(*programOf("mcf")), kMcf1);
    EXPECT_NE(arch::programContentKey(*gcc1), kMcf1);
    EXPECT_NE(arch::programContentKey(*mcf2), kMcf1);
    EXPECT_NE(arch::programContentKey(*mcf2),
              arch::programContentKey(*gcc1));
}

TEST(PredecodeProgram, FlattensOneRecordPerStaticInstruction)
{
    const auto prog = programOf("untst");
    const arch::PreDecodedProgram pre(*prog);
    ASSERT_EQ(pre.size(), prog->code.size());
    EXPECT_EQ(pre.fingerprint(), arch::programContentKey(*prog));
    EXPECT_EQ(pre.entryPc(), prog->entryPc);
    for (size_t i = 0; i < pre.size(); ++i) {
        const arch::PreInst &p = pre.at(i);
        // The static instruction is carried verbatim.
        EXPECT_EQ(p.inst.op, prog->code[i].op) << "inst " << i;
        // The pre-cast immediate matches the instruction's own.
        EXPECT_EQ(p.immU, uint64_t(p.inst.imm)) << "inst " << i;
        // A record can be a load or a conditional branch, never both.
        EXPECT_FALSE(p.has(arch::PreInst::kIsLoad) &&
                     p.has(arch::PreInst::kIsCondBranch))
            << "inst " << i;
    }
}

// ---------------------------------------------------------------------------
// On/off bit-exactness across workloads and machine models
// ---------------------------------------------------------------------------

TEST(Predecode, OnAndOffProduceIdenticalStatsAcrossModels)
{
    const std::vector<std::string> workloads{"mcf", "gcc", "untst"};

    sim::SimSession cached, reference;
    reference.setPredecode(false);
    ASSERT_FALSE(reference.predecodeEnabled());
    ASSERT_TRUE(cached.predecodeEnabled()) << "predecode defaults on";

    auto &pc = arch::PredecodeCache::instance();
    const uint64_t buildsBefore = pc.builds();
    const uint64_t hitsBefore = pc.hits();

    for (const auto &wl : workloads) {
        const auto program = programOf(wl);
        for (const auto &[name, cfg] : machineModels()) {
            const auto fast = cached.simulate(program, cfg);
            const auto slow = reference.simulate(program, cfg);
            const std::string what = wl + "/" + name;
            expectSameStats(fast.stats, slow.stats, what);
            EXPECT_EQ(fast.instructions, slow.instructions) << what;
            EXPECT_EQ(fast.halted, slow.halted) << what;
        }
    }

    // Non-vacuity: the cached session actually consulted the shared
    // cache (one build per distinct program at most, hits thereafter),
    // and the reference session never touched it.
    EXPECT_GT(pc.hits(), hitsBefore)
        << "the predecode path never hit the cache: the equivalence "
           "above tested nothing";
    EXPECT_LE(pc.builds() - buildsBefore, workloads.size());
}

// ---------------------------------------------------------------------------
// Cross-program correctness through one warm session
// ---------------------------------------------------------------------------

TEST(Predecode, WarmSessionSwitchesProgramsWithoutStaleDecode)
{
    // One warm session alternating two different programs must rebind
    // its pre-decode on every switch (A,B,A,B) and match fresh
    // single-use sessions exactly; the shared cache must build each
    // program once and serve the revisits as hits.
    const auto cfg = pipeline::MachineConfig::optimized();
    const auto a = programOf("mcf");
    const auto b = programOf("gcc");

    sim::SimSession freshA, freshB;
    const auto refA = freshA.simulate(a, cfg);
    const auto refB = freshB.simulate(b, cfg);

    auto &pc = arch::PredecodeCache::instance();
    const uint64_t buildsBefore = pc.builds();

    sim::SimSession warm;
    const auto a1 = warm.simulate(a, cfg);
    const auto b1 = warm.simulate(b, cfg);
    const auto a2 = warm.simulate(a, cfg);
    const auto b2 = warm.simulate(b, cfg);

    expectSameStats(a1.stats, refA.stats, "warm mcf #1");
    expectSameStats(b1.stats, refB.stats, "warm gcc #1");
    expectSameStats(a2.stats, refA.stats, "warm mcf #2");
    expectSameStats(b2.stats, refB.stats, "warm gcc #2");
    EXPECT_EQ(a1.instructions, refA.instructions);
    EXPECT_EQ(b1.instructions, refB.instructions);

    // The fresh sessions above already populated both programs, so the
    // warm session's four runs must not build anything new.
    EXPECT_EQ(pc.builds(), buildsBefore)
        << "a warm program switch rebuilt a table the cache already had";
}

TEST(Predecode, StickyAcrossSessionReuse)
{
    // setPredecode survives reset()/simulate() until changed, like
    // setFastForward, and flipping it between runs on the SAME warm
    // session still yields identical results.
    const auto program = programOf("art");
    const auto cfg = pipeline::MachineConfig::optimized();

    sim::SimSession s;
    const auto first = s.simulate(program, cfg);
    s.setPredecode(false);
    EXPECT_FALSE(s.predecodeEnabled());
    const auto slow = s.simulate(program, cfg);
    s.setPredecode(true);
    const auto again = s.simulate(program, cfg);

    expectSameStats(first.stats, slow.stats, "warm predecode-off rerun");
    expectSameStats(first.stats, again.stats, "warm predecode-on rerun");
}

// ---------------------------------------------------------------------------
// Zero heap allocations on the warm cached path
// ---------------------------------------------------------------------------

TEST(Predecode, WarmCachedRunPerformsZeroHeapAllocations)
{
    // The batched-execution warm path (same program, back-to-back
    // configs on one resident session) must stay allocation-free with
    // predecode on: a cache hit is a map probe plus a shared_ptr copy.
    const auto prog = programOf("untst");
    const auto base = pipeline::MachineConfig::baseline();
    const auto opt = pipeline::MachineConfig::optimized();

    sim::SimSession session;
    ASSERT_TRUE(session.predecodeEnabled());
    // Cold pass over both configs sizes everything, including the
    // pre-decode table for prog.
    const auto coldBase = session.simulate(prog, base);
    const auto coldOpt = session.simulate(prog, opt);

    const uint64_t before = g_newCalls.load(std::memory_order_relaxed);
    session.reset(prog, base);
    const auto warmBase = session.run();
    session.reset(prog, opt);
    const auto warmOpt = session.run();
    const uint64_t after = g_newCalls.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "warm batched reset+run allocated " << (after - before)
        << " times";

    expectSameStats(warmBase.stats, coldBase.stats, "warm base rerun");
    expectSameStats(warmOpt.stats, coldOpt.stats, "warm opt rerun");
    EXPECT_GT(warmBase.instructions, 1000u)
        << "the workload must be big enough to mean something";
}
