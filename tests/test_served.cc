/**
 * @file
 * Standing-fleet tests: the framed line-JSON protocol, the in-process
 * SweepService, and the `conopt_sweep --connect` client path.
 *
 * The load-bearing properties:
 *   - the frame codec and every server envelope round-trip exactly,
 *     and malformed streams are rejected (never silently resynced);
 *   - a daemon-served run returns the exact BenchArtifact::toJson()
 *     bytes, so the --connect driver path produces a merged artifact
 *     byte-identical to the ephemeral-shard path at tolerance 0;
 *   - the warm path is warm: repeat requests construct no new
 *     SimSessions and reach a steady state where a run performs the
 *     same number of heap allocations as the previous identical run;
 *   - concurrent clients are all served; healthz counts them;
 *   - a real daemon process drains gracefully on SIGTERM: the
 *     in-flight request still gets its result frame and the process
 *     exits 0.
 *
 * The test binary doubles as the processes it needs: with
 * CONOPT_SERVED_TEST_CHILD=bench it acts as the bench binary the
 * ephemeral driver spawns (registry table1 through the harness), and
 * with CONOPT_SERVED_TEST_CHILD=daemon it becomes a real conopt_served
 * daemon via servedMain(), so SIGTERM drain is tested against an
 * actual process.
 */

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/baseline.hh"
#include "src/sim/bench_registry.hh"
#include "src/sim/driver.hh"
#include "src/sim/harness.hh"
#include "src/sim/request.hh"
#include "src/sim/service.hh"
#include "src/sim/session.hh"

using namespace conopt;
namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Counting global allocator (for the warm-path steady-state test).
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_newCalls{0};
} // namespace

// GCC flags free() inside a replaced operator delete as a mismatched
// pair; it cannot see that the replaced operator new is malloc-backed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace {

// Sanitizer instrumentation slows the simulated work several-fold, so
// every socket wait scales with the build flavour.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kFrameTimeoutSeconds = 300.0;
constexpr int kDaemonWaitDeciseconds = 600;
#else
constexpr double kFrameTimeoutSeconds = 120.0;
constexpr int kDaemonWaitDeciseconds = 300;
#endif

/** Scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("conopt_test_served_" +
                std::to_string(uint64_t(::getpid())) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }

    static unsigned &
    counter()
    {
        static unsigned c = 0;
        return c;
    }
};

/** setenv for the lifetime of a test (spawned children inherit it). */
struct EnvGuard
{
    std::string name;

    EnvGuard(const char *n, const std::string &v) : name(n)
    {
        ::setenv(n, v.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name.c_str()); }
};

std::string
selfExePath()
{
    return fs::read_symlink("/proc/self/exe").string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A small fiddly-valued request that exercises every schema field. */
sim::SweepRequest
fiddlyRequest()
{
    sim::SweepRequest req;
    req.bench = "fig6_speedup";
    req.priority = 7;
    req.run.shard = {2, 5};
    req.run.scale = 3;
    req.run.threads = 2;
    req.run.ipcSampleInterval = 12345;
    req.run.perf = true;
    req.run.emitArtifact = true;
    req.run.tolerance = 0.1; // not exactly representable: %.17g matters
    return req;
}

/** A table1 request the service can finish quickly. */
sim::SweepRequest
table1Request()
{
    sim::SweepRequest req;
    req.bench = "table1_workloads";
    req.run.scale = 1;
    return req;
}

/** Drives a started service's accept loop from a background thread —
 *  the role conopt_served's main loop plays for the real daemon. The
 *  tests call svc.shutdown() while the pump still runs, deliberately:
 *  that pins the cross-thread shutdown-vs-pollOnce contract. */
struct ServicePump
{
    sim::SweepService &svc;
    std::atomic<bool> stopFlag{false};
    std::thread thread;

    explicit ServicePump(sim::SweepService &s)
        : svc(s), thread([this] {
              while (!stopFlag.load(std::memory_order_relaxed))
                  svc.pollOnce(20);
          })
    {
    }
    ~ServicePump()
    {
        stopFlag.store(true, std::memory_order_relaxed);
        thread.join();
    }
};

/** What one served run produced, transport-level. */
struct WireRun
{
    bool ok = false;
    std::string artifact;
    int errCode = 0;
    std::string errMessage;
    std::vector<std::string> progress;
};

/** Connect to @p addr, send @p req, and collect frames until the
 *  terminal result/error envelope. */
WireRun
runOverSocket(const std::string &addr, const sim::SweepRequest &req)
{
    WireRun out;
    std::string err;
    const int fd = sim::connectToService(addr, &err);
    if (fd < 0) {
        out.errMessage = err;
        return out;
    }
    if (!sim::writeFrame(fd, sim::makeRunFrame(req), &err)) {
        out.errMessage = err;
        ::close(fd);
        return out;
    }
    sim::FrameReader rd;
    for (;;) {
        std::string payload;
        if (!sim::readFrame(fd, &rd, &payload, kFrameTimeoutSeconds,
                            &err)) {
            out.errMessage = "transport: " + err;
            break;
        }
        sim::ServerFrame f;
        if (!sim::parseServerFrame(payload, &f, &err)) {
            out.errMessage = "bad server frame: " + err;
            break;
        }
        if (f.type == sim::ServerFrame::Type::Progress) {
            out.progress.push_back(f.line);
            continue;
        }
        if (f.type == sim::ServerFrame::Type::Result) {
            out.ok = true;
            out.artifact = f.artifact;
        } else {
            out.errCode = f.code;
            out.errMessage = f.message;
        }
        break;
    }
    ::close(fd);
    return out;
}

/** Child-mode entry: the bench binary the ephemeral driver spawns.
 *  Runs the registry's table1 build through the shared harness, so
 *  its shard artifacts are the ones conopt_served would serve. */
int
servedBenchChild(int argc, char **argv)
{
    const sim::HarnessOptions hopts = sim::HarnessOptions::parse(argc, argv);
    const sim::BenchDef *def = sim::findBench("table1_workloads");
    sim::BenchArtifact art;
    std::string err;
    if (!def->build(hopts.run, sim::BenchContext{}, &art, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    return sim::harnessFinish("table1_workloads", std::move(art), hopts);
}

/** Child-mode entry: a real conopt_served daemon. */
int
servedDaemonChild()
{
    const char *pf = std::getenv("CONOPT_SERVED_TEST_PORTFILE");
    return sim::servedMain({"--listen", "127.0.0.1:0", "--port-file",
                            pf ? pf : "served.port", "--workers", "1"});
}

} // namespace

int
main(int argc, char **argv)
{
    if (const char *mode = std::getenv("CONOPT_SERVED_TEST_CHILD")) {
        if (std::strcmp(mode, "daemon") == 0)
            return servedDaemonChild();
        return servedBenchChild(argc, argv);
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

// ---------------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------------

TEST(FrameCodec, RoundTripsFramesFedByteByByte)
{
    const std::vector<std::string> payloads = {
        "{}", "", std::string("x\ny\0z", 5), "{\"type\":\"healthz\"}"};
    std::string wire;
    for (const auto &p : payloads)
        wire += sim::encodeFrame(p);

    sim::FrameReader rd;
    std::vector<std::string> got;
    std::string payload, err;
    for (char c : wire) {
        rd.feed(&c, 1);
        int r;
        while ((r = rd.next(&payload, &err)) == 1)
            got.push_back(payload);
        ASSERT_EQ(r, 0) << err;
    }
    EXPECT_EQ(got, payloads);
    EXPECT_EQ(rd.pending(), 0u) << "no residue after the last frame";
}

TEST(FrameCodec, WaitsForMorePayloadBytes)
{
    sim::FrameReader rd;
    std::string payload, err;
    rd.feed("5 abc", 5);
    EXPECT_EQ(rd.next(&payload, &err), 0) << "frame is incomplete";
    rd.feed("de\n", 3);
    ASSERT_EQ(rd.next(&payload, &err), 1) << err;
    EXPECT_EQ(payload, "abcde");
}

TEST(FrameCodec, RejectsMalformedStreams)
{
    const struct
    {
        const char *name;
        std::string wire;
    } cases[] = {
        {"non-numeric length", "xyz {}\n"},
        {"negative length", "-3 {}\n"},
        {"oversized length", "999999999999 x\n"},
        {"over frame cap",
         std::to_string(sim::kMaxFrameBytes + 1) + " x\n"},
        {"missing terminator", "3 abcX"},
        {"no header space", "0123456789012345678901234"},
    };
    for (const auto &c : cases) {
        sim::FrameReader rd;
        rd.feed(c.wire.data(), c.wire.size());
        std::string payload, err;
        EXPECT_EQ(rd.next(&payload, &err), -1) << c.name;
        EXPECT_FALSE(err.empty()) << c.name;
    }
}

// ---------------------------------------------------------------------------
// Envelopes.
// ---------------------------------------------------------------------------

TEST(Envelopes, ServerFramesRoundTrip)
{
    sim::ServerFrame f;
    std::string err;

    ASSERT_TRUE(sim::parseServerFrame(
        sim::makeProgressFrame("CONOPT-PROGRESS v1 done=1"), &f, &err))
        << err;
    EXPECT_EQ(f.type, sim::ServerFrame::Type::Progress);
    EXPECT_EQ(f.line, "CONOPT-PROGRESS v1 done=1");

    ASSERT_TRUE(sim::parseServerFrame(
        sim::makeResultFrame("{\"jobs\":[]}\n"), &f, &err))
        << err;
    EXPECT_EQ(f.type, sim::ServerFrame::Type::Result);
    EXPECT_EQ(f.artifact, "{\"jobs\":[]}\n") << "artifact bytes verbatim";

    ASSERT_TRUE(sim::parseServerFrame(sim::makeErrorFrame(1, "bench died"),
                                      &f, &err))
        << err;
    EXPECT_EQ(f.type, sim::ServerFrame::Type::Error);
    EXPECT_EQ(f.code, 1) << "code 1 = bench ran and failed";
    EXPECT_EQ(f.message, "bench died");

    ASSERT_TRUE(sim::parseServerFrame(sim::makeErrorFrame(2, "queue full"),
                                      &f, &err))
        << err;
    EXPECT_EQ(f.code, 2) << "code 2 = request never ran";
}

TEST(Envelopes, RejectsMalformedServerFrames)
{
    const char *cases[] = {
        "not json at all",
        "[1,2,3]",
        "{\"type\":\"launch-missiles\"}",
        "{\"line\":\"orphan\"}",
        "{\"type\":\"progress\"}",         // no line
        "{\"type\":\"result\"}",           // no artifact
        "{\"type\":\"error\",\"code\":1}", // no message
    };
    for (const char *c : cases) {
        sim::ServerFrame f;
        std::string err;
        EXPECT_FALSE(sim::parseServerFrame(c, &f, &err)) << c;
        EXPECT_FALSE(err.empty()) << c;
    }
}

TEST(Envelopes, RunFrameCarriesTheRequestLosslessly)
{
    const sim::SweepRequest req = fiddlyRequest();
    const std::string wire = sim::encodeFrame(sim::makeRunFrame(req));

    sim::FrameReader rd;
    rd.feed(wire.data(), wire.size());
    std::string payload, err;
    ASSERT_EQ(rd.next(&payload, &err), 1) << err;

    sim::JsonValue doc;
    ASSERT_TRUE(sim::JsonValue::parse(payload, &doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.get("request"), nullptr);

    sim::SweepRequest back;
    ASSERT_TRUE(sim::SweepRequest::decodeValue(*doc.get("request"), &back,
                                               &err))
        << err;
    EXPECT_EQ(back.encodeJson(), req.encodeJson());
    EXPECT_EQ(back.fingerprint(), req.fingerprint());
    EXPECT_EQ(back.priority, 7u);
    EXPECT_EQ(back.run.shard.index, 2u);
    EXPECT_EQ(back.run.shard.count, 5u);
    EXPECT_DOUBLE_EQ(back.run.tolerance, 0.1);
}

// ---------------------------------------------------------------------------
// The service, in-process.
// ---------------------------------------------------------------------------

TEST(Service, ServesVerbatimArtifactBytesOverUnixSocket)
{
    TempDir tmp;
    sim::ServiceOptions sopts;
    sopts.listenAddr = "unix:" + tmp.file("served.sock");
    sim::SweepService svc(sopts);
    std::string err;
    ASSERT_TRUE(svc.start(&err)) << err;
    EXPECT_EQ(svc.addr(), sopts.listenAddr);
    ServicePump pump(svc);

    const sim::SweepRequest req = table1Request();
    const WireRun run = runOverSocket(svc.addr(), req);
    ASSERT_TRUE(run.ok) << run.errMessage;

    // The served bytes are exactly what an in-process execution of the
    // same request serializes to: the byte-identity contract the
    // --connect merge path is built on.
    sim::BenchArtifact art;
    ASSERT_TRUE(
        sim::executeSweepRequest(req, sim::BenchContext{}, &art, &err))
        << err;
    EXPECT_EQ(run.artifact, art.toJson());
    EXPECT_FALSE(run.progress.empty())
        << "per-job progress frames stream during the run";

    const sim::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.requestsServed, 1u);
    EXPECT_EQ(stats.requestsFailed, 0u);
    EXPECT_EQ(stats.latencyCount, 1u);
    svc.shutdown();
}

TEST(Service, RejectsBadRequestsWithNeverRanCode)
{
    sim::SweepService svc;
    std::string err;
    ASSERT_TRUE(svc.start(&err)) << err;
    ServicePump pump(svc);

    // Unknown bench: rejected before enqueue, exit-contract code 2.
    sim::SweepRequest unknown;
    unknown.bench = "table9_workloads";
    WireRun run = runOverSocket(svc.addr(), unknown);
    EXPECT_FALSE(run.ok);
    EXPECT_EQ(run.errCode, 2);
    EXPECT_NE(run.errMessage.find("unknown bench"), std::string::npos)
        << run.errMessage;
    EXPECT_NE(run.errMessage.find("table1_workloads"), std::string::npos)
        << "the rejection lists the registered benches";

    // A syntactically-valid frame whose payload is not JSON.
    {
        const int fd = sim::connectToService(svc.addr(), &err);
        ASSERT_GE(fd, 0) << err;
        ASSERT_TRUE(sim::writeFrame(fd, "this is not json", &err)) << err;
        sim::FrameReader rd;
        std::string payload;
        ASSERT_TRUE(sim::readFrame(fd, &rd, &payload, kFrameTimeoutSeconds,
                                   &err))
            << err;
        sim::ServerFrame f;
        ASSERT_TRUE(sim::parseServerFrame(payload, &f, &err)) << err;
        EXPECT_EQ(f.type, sim::ServerFrame::Type::Error);
        EXPECT_EQ(f.code, 2);
        ::close(fd);
    }

    // A malformed byte stream (no frame header at all): the reader
    // answers with an error frame and drops the connection.
    {
        const int fd = sim::connectToService(svc.addr(), &err);
        ASSERT_GE(fd, 0) << err;
        const char junk[] = "GET / HTTP/1.1\r\n\r\n";
        ASSERT_GT(::send(fd, junk, sizeof(junk) - 1, MSG_NOSIGNAL), 0);
        sim::FrameReader rd;
        std::string payload;
        ASSERT_TRUE(sim::readFrame(fd, &rd, &payload, kFrameTimeoutSeconds,
                                   &err))
            << err;
        sim::ServerFrame f;
        ASSERT_TRUE(sim::parseServerFrame(payload, &f, &err)) << err;
        EXPECT_EQ(f.type, sim::ServerFrame::Type::Error);
        EXPECT_EQ(f.code, 2);
        ::close(fd);
    }

    const sim::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.requestsServed, 0u);
    EXPECT_GE(stats.requestsRejected, 2u);
    svc.shutdown();
}

TEST(Service, HealthzReportsTheRequestStream)
{
    sim::SweepService svc;
    std::string err;
    ASSERT_TRUE(svc.start(&err)) << err;
    ServicePump pump(svc);

    ASSERT_TRUE(runOverSocket(svc.addr(), table1Request()).ok);

    const int fd = sim::connectToService(svc.addr(), &err);
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(sim::writeFrame(fd, sim::makeHealthzFrame(), &err)) << err;
    sim::FrameReader rd;
    std::string payload;
    ASSERT_TRUE(
        sim::readFrame(fd, &rd, &payload, kFrameTimeoutSeconds, &err))
        << err;
    ::close(fd);

    sim::ServerFrame f;
    ASSERT_TRUE(sim::parseServerFrame(payload, &f, &err)) << err;
    ASSERT_EQ(f.type, sim::ServerFrame::Type::Healthz);

    sim::JsonValue doc;
    ASSERT_TRUE(sim::JsonValue::parse(f.body, &doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.get("type")->asString(), "healthz");
    for (const char *key :
         {"uptime_s", "draining", "workers", "queue_depth",
          "queue_capacity", "connections_accepted", "requests_served",
          "requests_failed", "requests_rejected", "sessions",
          "cache_hits", "cache_misses", "cache_stores", "programs_built",
          "latency_count", "latency_p50_s", "latency_p95_s",
          "latency_p99_s", "latency_max_s", "latency_sample_s"})
        EXPECT_NE(doc.get(key), nullptr) << "healthz field " << key;
    EXPECT_EQ(doc.get("requests_served")->asU64(), 1u);
    EXPECT_EQ(doc.get("latency_count")->asU64(), 1u);
    EXPECT_GT(doc.get("programs_built")->asU64(), 0u)
        << "the program cache stays warm across requests";
    EXPECT_EQ(doc.get("latency_sample_s")->size(), 1u)
        << "reservoir snapshot of the request stream";
    svc.shutdown();
}

TEST(Service, ConcurrentClientsAreAllServed)
{
    sim::SweepService svc(sim::ServiceOptions{"127.0.0.1:0", 2, 64, ""});
    std::string err;
    ASSERT_TRUE(svc.start(&err)) << err;
    ServicePump pump(svc);

    constexpr unsigned kClients = 4;
    std::vector<WireRun> runs(kClients);
    std::vector<std::thread> clients;
    for (unsigned i = 0; i < kClients; ++i)
        clients.emplace_back([&svc, &runs, i] {
            sim::SweepRequest req = table1Request();
            req.run.shard = {i, kClients};
            req.priority = i; // exercise distinct priority levels
            runs[i] = runOverSocket(svc.addr(), req);
        });
    for (auto &t : clients)
        t.join();

    for (unsigned i = 0; i < kClients; ++i) {
        EXPECT_TRUE(runs[i].ok)
            << "client " << i << ": " << runs[i].errMessage;
        EXPECT_FALSE(runs[i].artifact.empty());
    }
    const sim::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.requestsServed, kClients);
    EXPECT_EQ(stats.queueDepth, 0u);
    EXPECT_EQ(stats.latencyCount, size_t(kClients));
    svc.shutdown();
}

TEST(Service, WarmPathReachesAllocationSteadyState)
{
    // The whole point of the daemon: repeat requests hit warm
    // sessions and a warm program cache. Pin it observably — after a
    // priming run, an identical run constructs zero new SimSessions
    // and settles to a steady allocation count (run 3 allocates
    // exactly what run 2 did; nothing accumulates or re-warms).
    sim::ProgramCache programs;
    sim::BenchContext ctx;
    ctx.programs = &programs;
    ctx.execThreads = 1; // the daemon-worker configuration

    sim::SweepRequest req;
    req.bench = "fig6_speedup";
    req.run.scale = 1;
    req.run.shard = {0, 11};

    sim::BenchArtifact art;
    std::string err;
    ASSERT_TRUE(sim::executeSweepRequest(req, ctx, &art, &err)) << err;
    const uint64_t sessionsAfterWarmup = sim::SimSession::constructed();
    const std::string firstJson = art.toJson();

    const uint64_t before2 = g_newCalls.load(std::memory_order_relaxed);
    ASSERT_TRUE(sim::executeSweepRequest(req, ctx, &art, &err)) << err;
    const uint64_t allocs2 =
        g_newCalls.load(std::memory_order_relaxed) - before2;

    const uint64_t before3 = g_newCalls.load(std::memory_order_relaxed);
    ASSERT_TRUE(sim::executeSweepRequest(req, ctx, &art, &err)) << err;
    const uint64_t allocs3 =
        g_newCalls.load(std::memory_order_relaxed) - before3;

    EXPECT_EQ(sim::SimSession::constructed(), sessionsAfterWarmup)
        << "warm runs must reuse the per-worker session";
    EXPECT_EQ(allocs3, allocs2)
        << "warm runs must hit allocation steady state";
    EXPECT_EQ(art.toJson(), firstJson) << "and stay deterministic";
}

// ---------------------------------------------------------------------------
// The --connect driver path.
// ---------------------------------------------------------------------------

TEST(ConnectDriver, MergedArtifactIsByteIdenticalToEphemeral)
{
    TempDir tmp;
    EnvGuard scale("CONOPT_SCALE", "1");

    // Ephemeral: the driver spawns this binary as the bench.
    sim::DriverOptions eph;
    eph.benchPath = selfExePath();
    eph.benchName = "table1_workloads";
    eph.shards = 2;
    eph.run.artifactDir = tmp.file("eph");
    eph.streamProgress = false;
    sim::DriverOutcome ephOut;
    {
        EnvGuard mode("CONOPT_SERVED_TEST_CHILD", "bench");
        ephOut = sim::runSweepDriver(eph);
    }
    ASSERT_EQ(ephOut.exitCode, 0) << ephOut.error;

    // Standing: the same bench name resolved by an in-process daemon.
    sim::SweepService svc;
    std::string err;
    ASSERT_TRUE(svc.start(&err)) << err;
    ServicePump pump(svc);
    sim::DriverOptions conn;
    conn.benchName = "table1_workloads";
    conn.shards = 2;
    conn.connectHosts = {svc.addr()};
    conn.run.artifactDir = tmp.file("conn");
    conn.streamProgress = false;
    const sim::DriverOutcome connOut = sim::runSweepDriver(conn);
    ASSERT_EQ(connOut.exitCode, 0) << connOut.error;
    svc.shutdown();

    ASSERT_FALSE(ephOut.mergedArtifactPath.empty());
    ASSERT_FALSE(connOut.mergedArtifactPath.empty());
    const std::string ephBytes = readFile(ephOut.mergedArtifactPath);
    const std::string connBytes = readFile(connOut.mergedArtifactPath);
    ASSERT_FALSE(ephBytes.empty());
    EXPECT_EQ(connBytes, ephBytes)
        << "a standing fleet must never change the science";
    EXPECT_GT(connOut.shards.size(), 0u);
    for (const auto &s : connOut.shards)
        EXPECT_TRUE(s.ok);
}

TEST(ConnectDriver, UnknownEndpointFailsWithExitContractError)
{
    TempDir tmp;
    sim::DriverOptions o;
    o.benchName = "table1_workloads";
    o.shards = 1;
    o.connectHosts = {"127.0.0.1:1"}; // nothing listens on port 1
    o.run.artifactDir = tmp.path.string();
    o.retries = 0;
    o.streamProgress = false;
    const sim::DriverOutcome out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    EXPECT_FALSE(out.error.empty());
}

// ---------------------------------------------------------------------------
// A real daemon process: SIGTERM drain.
// ---------------------------------------------------------------------------

TEST(Daemon, SigtermDrainsInFlightRequestThenExitsZero)
{
    TempDir tmp;
    const std::string portFile = tmp.file("served.port");
    const std::string logFile = tmp.file("served.log");
    const std::string exe = selfExePath();

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("CONOPT_SERVED_TEST_CHILD", "daemon", 1);
        ::setenv("CONOPT_SERVED_TEST_PORTFILE", portFile.c_str(), 1);
        if (std::FILE *log = std::fopen(logFile.c_str(), "w")) {
            ::dup2(::fileno(log), 1);
            ::dup2(::fileno(log), 2);
        }
        ::execl(exe.c_str(), exe.c_str(), (char *)nullptr);
        ::_exit(127);
    }

    // Wait for the daemon to publish its ephemeral address.
    std::string addr;
    for (int i = 0; i < kDaemonWaitDeciseconds && addr.empty(); ++i) {
        addr = readFile(portFile);
        while (!addr.empty() && addr.back() == '\n')
            addr.pop_back();
        if (addr.empty())
            ::usleep(100000);
    }
    ASSERT_FALSE(addr.empty())
        << "daemon never wrote its port file; log:\n" << readFile(logFile);

    // Start a run, then SIGTERM the daemon while it is (likely still)
    // in flight. Drain semantics: the result frame must still arrive.
    std::string err;
    const int fd = sim::connectToService(addr, &err);
    ASSERT_GE(fd, 0) << err;
    sim::SweepRequest req;
    req.bench = "fig6_speedup";
    req.run.scale = 1;
    req.run.shard = {0, 4};
    ASSERT_TRUE(sim::writeFrame(fd, sim::makeRunFrame(req), &err)) << err;
    ::usleep(100000);
    ASSERT_EQ(::kill(pid, SIGTERM), 0);

    sim::FrameReader rd;
    bool gotResult = false;
    for (;;) {
        std::string payload;
        if (!sim::readFrame(fd, &rd, &payload, kFrameTimeoutSeconds, &err))
            break;
        sim::ServerFrame f;
        ASSERT_TRUE(sim::parseServerFrame(payload, &f, &err)) << err;
        if (f.type == sim::ServerFrame::Type::Progress)
            continue;
        ASSERT_EQ(f.type, sim::ServerFrame::Type::Result)
            << "drain must finish in-flight work, not error it: "
            << f.message;
        EXPECT_FALSE(f.artifact.empty());
        gotResult = true;
        break;
    }
    ::close(fd);
    EXPECT_TRUE(gotResult) << err << "; daemon log:\n" << readFile(logFile);

    int status = 0;
    pid_t waited = 0;
    for (int i = 0; i < kDaemonWaitDeciseconds; ++i) {
        waited = ::waitpid(pid, &status, WNOHANG);
        if (waited == pid)
            break;
        ::usleep(100000);
    }
    if (waited != pid) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        FAIL() << "daemon did not exit after SIGTERM; log:\n"
               << readFile(logFile);
    }
    ASSERT_TRUE(WIFEXITED(status)) << "daemon died to a signal";
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "clean drain exits 0; log:\n" << readFile(logFile);
}
