/**
 * @file
 * conopt_lint unit tests: the lexer never false-positives inside
 * strings/comments/raw strings, every rule fires on a crafted
 * snippet, suppressions require a reason, the per-directory config
 * merge works, the CLI honours the 0/1/2 exit contract, and — the
 * meta-test — the real repository tree lints clean with its checked-in
 * `.conopt-lint` configuration (the same invocation CI gates on).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/lint/lexer.hh"
#include "src/lint/lint.hh"
#include "src/lint/rules.hh"

namespace fs = std::filesystem;
using conopt::lint::lex;
using conopt::lint::lintMain;
using conopt::lint::lintSource;
using conopt::lint::RuleConfig;
using conopt::lint::TokKind;
using conopt::lint::Violation;

namespace {

/** Identifier texts of a lexed snippet, in order. */
std::vector<std::string>
identifiers(const std::string &src)
{
    std::vector<std::string> out;
    for (const auto &t : lex(src).tokens)
        if (t.kind == TokKind::Identifier)
            out.push_back(t.text);
    return out;
}

bool
hasIdent(const std::string &src, const std::string &name)
{
    const auto ids = identifiers(src);
    return std::find(ids.begin(), ids.end(), name) != ids.end();
}

/** Rules fired by linting @p src as `test.cc` (or a header) under
 *  @p config; returns just the rule names, sorted by the driver. */
std::vector<std::string>
firedRules(const std::string &src, const RuleConfig &config,
           const std::string &path = "test.cc")
{
    std::vector<std::string> out;
    for (const Violation &v : lintSource(path, src, config))
        out.push_back(v.rule);
    return out;
}

RuleConfig
onlyRule(const std::string &keep)
{
    RuleConfig c;
    for (const std::string &r : conopt::lint::allRuleNames())
        if (r != keep && r != "suppression")
            c.disabled.insert(r);
    c.hot = true;
    c.serialize = true;
    return c;
}

/** Unique scratch directory under the build tree's tmp. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/conopt_lint_test.XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path_ = p;
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path &path() const { return path_; }

    fs::path
    write(const std::string &rel, const std::string &contents) const
    {
        const fs::path p = path_ / rel;
        fs::create_directories(p.parent_path());
        std::ofstream(p) << contents;
        return p;
    }

  private:
    fs::path path_;
};

} // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, BannedNamesInsideStringsAndCommentsAreNotTokens)
{
    const std::string src =
        "const char *s = \"rand() time() system_clock\";\n"
        "// rand() in a line comment\n"
        "/* time() in a block\n   comment */\n"
        "int x = 0;\n";
    EXPECT_FALSE(hasIdent(src, "rand"));
    EXPECT_FALSE(hasIdent(src, "time"));
    EXPECT_FALSE(hasIdent(src, "system_clock"));
    EXPECT_TRUE(hasIdent(src, "x"));
}

TEST(Lexer, RawStringsAreSkippedWhole)
{
    const std::string src =
        "auto j = R\"json({\"rand\": \"time()\"})json\";\n"
        "auto k = R\"(plain rand())\";\n"
        "int after = 1;\n";
    EXPECT_FALSE(hasIdent(src, "rand"));
    EXPECT_FALSE(hasIdent(src, "time"));
    EXPECT_TRUE(hasIdent(src, "after"));
}

TEST(Lexer, EscapedQuotesDoNotEndStrings)
{
    EXPECT_FALSE(hasIdent("auto s = \"a \\\" rand() b\"; int y;", "rand"));
    EXPECT_FALSE(hasIdent("char c = '\\''; int z = rand0;", "rand"));
}

TEST(Lexer, CommentsAreCapturedWithLines)
{
    const auto lexed = lex("int a; // first\nint b;\n/* second */\n");
    ASSERT_EQ(lexed.comments.size(), 2u);
    EXPECT_EQ(lexed.comments[0].text, " first");
    EXPECT_EQ(lexed.comments[0].line, 1);
    EXPECT_EQ(lexed.comments[1].text, " second ");
    EXPECT_EQ(lexed.comments[1].line, 3);
}

TEST(Lexer, TokenLinesAndDigitSeparators)
{
    const auto lexed = lex("int a;\nuint64_t big = 1'000'000;\n");
    bool sawBig = false;
    for (const auto &t : lexed.tokens) {
        if (t.text == "big") {
            sawBig = true;
            EXPECT_EQ(t.line, 2);
        }
        if (t.kind == TokKind::Number) {
            EXPECT_EQ(t.text, "1'000'000");
        }
    }
    EXPECT_TRUE(sawBig);
}

// ---------------------------------------------------------------------------
// Rules: each one fires on a crafted snippet and stays quiet on the
// corresponding clean variant.
// ---------------------------------------------------------------------------

TEST(RuleDeterminism, FlagsRandAndWallClock)
{
    const auto cfg = onlyRule("determinism");
    EXPECT_EQ(firedRules("int x = rand();", cfg),
              std::vector<std::string>{"determinism"});
    EXPECT_EQ(firedRules("srand(42);", cfg),
              std::vector<std::string>{"determinism"});
    EXPECT_EQ(firedRules("auto t = time(nullptr);", cfg),
              std::vector<std::string>{"determinism"});
    EXPECT_EQ(firedRules("std::random_device rd;", cfg),
              std::vector<std::string>{"determinism"});
    EXPECT_EQ(
        firedRules("auto n = std::chrono::system_clock::now();", cfg),
        std::vector<std::string>{"determinism"});
}

TEST(RuleDeterminism, AllowsSteadyClockMembersAndPlainNames)
{
    const auto cfg = onlyRule("determinism");
    EXPECT_TRUE(
        firedRules("auto n = std::chrono::steady_clock::now();", cfg)
            .empty());
    // A member called .time() belongs to some object, not libc.
    EXPECT_TRUE(firedRules("double d = stats.time();", cfg).empty());
    // `time` as a variable name, never called.
    EXPECT_TRUE(firedRules("uint64_t time = 0; use(time);", cfg).empty());
}

TEST(RuleDeterminism, FlagsPointerValueFormatting)
{
    const auto cfg = onlyRule("determinism");
    EXPECT_EQ(firedRules("std::snprintf(b, n, \"at %p\", ptr);", cfg),
              std::vector<std::string>{"determinism"});
    EXPECT_TRUE(firedRules("std::snprintf(b, n, \"%d%%\", v);", cfg)
                    .empty());
}

TEST(RuleUnorderedIter, FlagsRangeForAndBeginOnUnordered)
{
    const auto cfg = onlyRule("unordered-iter");
    const std::string decl =
        "std::unordered_map<uint64_t, int> pages;\n";
    EXPECT_EQ(firedRules(decl + "for (auto &kv : pages) use(kv);", cfg),
              std::vector<std::string>{"unordered-iter"});
    EXPECT_EQ(firedRules(decl + "auto it = pages.begin();", cfg),
              std::vector<std::string>{"unordered-iter"});
    // Lookup is fine; so is iterating an ordered map.
    EXPECT_TRUE(firedRules(decl + "auto it = pages.find(k);", cfg).empty());
    EXPECT_TRUE(
        firedRules("std::map<int, int> m;\nfor (auto &kv : m) use(kv);",
                   cfg)
            .empty());
}

TEST(RuleUnorderedIter, OnlyInSerializeMarkedFiles)
{
    auto cfg = onlyRule("unordered-iter");
    cfg.serialize = false;
    EXPECT_TRUE(
        firedRules("std::unordered_set<int> s;\nfor (int v : s) use(v);",
                   cfg)
            .empty());
}

TEST(RuleHotpathAlloc, FlagsNewMallocAndGrowth)
{
    const auto cfg = onlyRule("hotpath-alloc");
    EXPECT_EQ(firedRules("auto *p = new Entry;", cfg),
              std::vector<std::string>{"hotpath-alloc"});
    EXPECT_EQ(firedRules("void *p = malloc(64);", cfg),
              std::vector<std::string>{"hotpath-alloc"});
    EXPECT_EQ(firedRules("q.push_back(x);", cfg),
              std::vector<std::string>{"hotpath-alloc"});
    EXPECT_EQ(firedRules("auto e = std::make_unique<Entry>();", cfg),
              std::vector<std::string>{"hotpath-alloc"});
}

TEST(RuleHotpathAlloc, AllowsCapacitySetupAndDefinitions)
{
    const auto cfg = onlyRule("hotpath-alloc");
    EXPECT_TRUE(firedRules("q.reserve(n); q.resize(n); q.clear();", cfg)
                    .empty());
    // A *definition* of push_back (RingBuffer) is not a growth call.
    EXPECT_TRUE(firedRules("T &push_back(T value) { return slot(); }",
                           cfg)
                    .empty());
    auto cold = cfg;
    cold.hot = false;
    EXPECT_TRUE(firedRules("q.push_back(x);", cold).empty());
}

TEST(RuleSignalSafety, FlagsUnsafeCallsInHandlerBodyOnly)
{
    const auto cfg = onlyRule("signal-safety");
    const std::string unsafe =
        "void onSig(int) { std::fprintf(stderr, \"die\\n\"); }\n"
        "void install() {\n"
        "  struct sigaction sa{};\n"
        "  sa.sa_handler = onSig;\n"
        "  sigaction(SIGTERM, &sa, nullptr);\n"
        "}\n";
    const auto fired = firedRules(unsafe, cfg);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], "signal-safety");

    const std::string safe =
        "volatile std::sig_atomic_t gStop = 0;\n"
        "void onSig(int sig) { gStop = 1; kill(getpid(), sig); }\n"
        "void install() {\n"
        "  struct sigaction sa{};\n"
        "  sa.sa_handler = onSig;\n"
        "}\n";
    EXPECT_TRUE(firedRules(safe, cfg).empty());

    // The same unsafe call OUTSIDE a handler is not this rule's
    // business.
    EXPECT_TRUE(
        firedRules("void log() { std::fprintf(stderr, \"x\\n\"); }", cfg)
            .empty());
}

TEST(RuleIncludeGuard, HeadersNeedGuardOrPragmaOnce)
{
    const auto cfg = onlyRule("include-guard");
    EXPECT_EQ(firedRules("int x;\n", cfg, "test.hh"),
              std::vector<std::string>{"include-guard"});
    EXPECT_TRUE(firedRules("#ifndef A_HH\n#define A_HH\nint x;\n#endif\n",
                           cfg, "test.hh")
                    .empty());
    EXPECT_TRUE(firedRules("#pragma once\nint x;\n", cfg, "test.hh")
                    .empty());
    // Mismatched guard name is no guard.
    EXPECT_EQ(firedRules("#ifndef A_HH\n#define B_HH\nint x;\n#endif\n",
                         cfg, "test.hh"),
              std::vector<std::string>{"include-guard"});
    // Source files are exempt.
    EXPECT_TRUE(firedRules("int x;\n", cfg, "test.cc").empty());
}

TEST(RuleNamespaceHygiene, HeaderScopeUsingAndStd)
{
    const auto cfg = onlyRule("namespace-hygiene");
    EXPECT_EQ(firedRules("#pragma once\nusing namespace conopt;\n", cfg,
                         "test.hh"),
              std::vector<std::string>{"namespace-hygiene"});
    EXPECT_TRUE(firedRules("using namespace conopt;\n", cfg, "test.cc")
                    .empty());
    EXPECT_EQ(firedRules("using namespace std;\n", cfg, "test.cc"),
              std::vector<std::string>{"namespace-hygiene"});
}

TEST(RuleStrayOutput, FlagsStdoutWritersUnlessAnnotated)
{
    const auto cfg = onlyRule("stray-output");
    EXPECT_EQ(firedRules("std::printf(\"debug %d\\n\", x);", cfg),
              std::vector<std::string>{"stray-output"});
    EXPECT_EQ(firedRules("std::fprintf(stdout, \"x\\n\");", cfg),
              std::vector<std::string>{"stray-output"});
    // The stream argument comes *last* for fputs/fwrite.
    EXPECT_EQ(firedRules("std::fputs(kUsage, stdout);", cfg),
              std::vector<std::string>{"stray-output"});
    EXPECT_EQ(firedRules("std::cout << x;", cfg),
              std::vector<std::string>{"stray-output"});
    EXPECT_TRUE(firedRules("std::fprintf(stderr, \"x\\n\");", cfg)
                    .empty());
    EXPECT_TRUE(firedRules("std::snprintf(b, n, \"x\");", cfg).empty());
    auto output = cfg;
    output.output = true;
    EXPECT_TRUE(firedRules("std::printf(\"table row\\n\");", output)
                    .empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(Suppression, SameLineAndPrecedingLineWithReason)
{
    const auto cfg = onlyRule("determinism");
    EXPECT_TRUE(
        firedRules("int x = rand(); // conopt-lint: allow(determinism) "
                   "fixture models a legacy RNG",
                   cfg)
            .empty());
    EXPECT_TRUE(
        firedRules("// conopt-lint: allow(determinism) fixture RNG\n"
                   "int x = rand();",
                   cfg)
            .empty());
}

TEST(Suppression, WithoutReasonIsItselfAViolation)
{
    const auto cfg = onlyRule("determinism");
    const auto fired = firedRules(
        "int x = rand(); // conopt-lint: allow(determinism)", cfg);
    // The bare allow() is rejected AND does not suppress.
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], "determinism");
    EXPECT_EQ(fired[1], "suppression");
}

TEST(Suppression, UnknownRuleAndWrongRuleDoNotSuppress)
{
    const auto cfg = onlyRule("determinism");
    const auto unknown = firedRules(
        "int x = rand(); // conopt-lint: allow(no-such-rule) because",
        cfg);
    ASSERT_EQ(unknown.size(), 2u);
    EXPECT_EQ(unknown[0], "determinism");
    EXPECT_EQ(unknown[1], "suppression");

    // A valid suppression for a DIFFERENT rule leaves the finding.
    EXPECT_EQ(firedRules("int x = rand(); // conopt-lint: "
                         "allow(hotpath-alloc) wrong rule on purpose",
                         cfg),
              std::vector<std::string>{"determinism"});
}

TEST(Suppression, DoesNotLeakToLaterLines)
{
    const auto cfg = onlyRule("determinism");
    EXPECT_EQ(firedRules("// conopt-lint: allow(determinism) first only\n"
                         "int a = rand();\n"
                         "int b = rand();\n",
                         cfg),
              std::vector<std::string>{"determinism"});
}

// ---------------------------------------------------------------------------
// Per-directory config + CLI exit contract
// ---------------------------------------------------------------------------

TEST(Config, DirectoryMergeDisableEnableAndMarks)
{
    TempDir tmp;
    tmp.write(".conopt-lint", "disable determinism\nhot hot_*.cc\n");
    tmp.write("inner/.conopt-lint", "enable determinism\n");
    tmp.write("outer.cc", "int x = rand();\n");
    tmp.write("inner/inner.cc", "int x = rand();\n");
    tmp.write("hot_one.cc", "q.push_back(x);\n");

    // Outer: determinism disabled; inner: re-enabled.
    EXPECT_EQ(lintMain({(tmp.path() / "outer.cc").string()}), 0);
    EXPECT_EQ(lintMain({(tmp.path() / "inner/inner.cc").string()}), 1);
    // The hot glob activates hotpath-alloc by basename match.
    EXPECT_EQ(lintMain({(tmp.path() / "hot_one.cc").string()}), 1);
}

TEST(Config, MalformedConfigIsAnError)
{
    TempDir tmp;
    tmp.write(".conopt-lint", "disable not-a-rule\n");
    tmp.write("a.cc", "int x;\n");
    EXPECT_EQ(lintMain({(tmp.path() / "a.cc").string()}), 2);
}

TEST(Cli, ExitCodeContract)
{
    TempDir tmp;
    const auto clean = tmp.write("clean.cc", "int x = 0;\n");
    const auto dirty =
        tmp.write("dirty.cc", "int x = rand();\n");  // default config
    EXPECT_EQ(lintMain({clean.string()}), 0);
    EXPECT_EQ(lintMain({dirty.string()}), 1);
    EXPECT_EQ(lintMain({}), 2);
    EXPECT_EQ(lintMain({(tmp.path() / "missing.cc").string()}), 2);
    EXPECT_EQ(lintMain({"--list-rules"}), 0);
    // Directory walk finds both files -> violations exit.
    EXPECT_EQ(lintMain({tmp.path().string()}), 1);
}

// ---------------------------------------------------------------------------
// Meta: the real tree lints clean with its checked-in configuration —
// the exact invocation the CI gate runs.
// ---------------------------------------------------------------------------

TEST(Meta, RepositoryTreeIsClean)
{
    const std::string root = CONOPT_SOURCE_DIR;
    EXPECT_EQ(lintMain({root + "/src", root + "/bench", root + "/tools",
                        root + "/tests", root + "/examples"}),
              0)
        << "conopt_lint found violations in the checked-in tree; run "
           "build/conopt_lint src bench tools tests examples from the "
           "repo root to see them";
}
