/**
 * @file
 * Integration tests: every Table 1 workload runs to completion on the
 * functional emulator (deterministic checksums) and on the timing model
 * under both machine configurations, with the optimizer's strict
 * expression-and-value checking active throughout.
 */

#include <gtest/gtest.h>

#include "src/arch/emulator.hh"
#include "src/sim/simulator.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(WorkloadTest, EmulatorHaltsDeterministically)
{
    const auto &w = workloads::workloadByName(GetParam());
    const auto p1 = w.build(1);
    arch::Emulator a(p1), b(p1);
    a.run();
    b.run();
    ASSERT_TRUE(a.halted()) << w.name << " did not halt";
    EXPECT_EQ(a.instCount(), b.instCount());
    EXPECT_EQ(a.memory().readQuad(workloads::checksumAddr),
              b.memory().readQuad(workloads::checksumAddr));
    EXPECT_GT(a.instCount(), 50000u) << "workload too small to measure";
    EXPECT_LT(a.instCount(), 3000000u) << "workload too large for tests";
}

TEST_P(WorkloadTest, ScaleParameterScalesWork)
{
    const auto &w = workloads::workloadByName(GetParam());
    arch::Emulator s1(w.build(1));
    arch::Emulator s2(w.build(2));
    s1.run();
    s2.run();
    EXPECT_GT(s2.instCount(), s1.instCount() * 3 / 2)
        << "scale=2 should be substantially more work";
}

TEST_P(WorkloadTest, TimingModelAgreesWithEmulator)
{
    const auto &w = workloads::workloadByName(GetParam());
    const auto program = w.build(1);
    arch::Emulator ref(program);
    ref.run();

    // Baseline and optimizer runs must retire exactly the architectural
    // instruction stream. The optimizer's strict checking panics on any
    // value divergence, so completing at all is a correctness statement.
    const auto base =
        sim::simulate(program, pipeline::MachineConfig::baseline());
    EXPECT_TRUE(base.halted);
    EXPECT_EQ(base.instructions, ref.instCount());

    const auto opt =
        sim::simulate(program, pipeline::MachineConfig::optimized());
    EXPECT_TRUE(opt.halted);
    EXPECT_EQ(opt.instructions, ref.instCount());

    // Sanity on the stats invariants.
    EXPECT_EQ(opt.stats.retired, opt.instructions);
    EXPECT_LE(opt.stats.opt.earlyExecuted, opt.stats.retired);
    EXPECT_LE(opt.stats.opt.loadsRemoved, opt.stats.opt.loads);
    EXPECT_LE(opt.stats.opt.addrKnown, opt.stats.opt.memOps);
    EXPECT_LE(opt.stats.earlyRecoveredMispredicts,
              opt.stats.mispredicted);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::Values("bzp", "cra", "eon", "gap", "gcc", "mcf", "prl",
                      "twf", "vor", "vpr", "amp", "app", "art", "eqk",
                      "msa", "mgd", "g721d", "g721e", "mpg2d", "mpg2e",
                      "untst", "tst"),
    [](const auto &paramInfo) { return paramInfo.param; });

TEST(WorkloadRegistry, TableOneInventory)
{
    const auto &all = workloads::allWorkloads();
    ASSERT_EQ(all.size(), 22u) << "Table 1 lists 22 benchmarks";
    EXPECT_EQ(workloads::suiteWorkloads("SPECint").size(), 10u);
    EXPECT_EQ(workloads::suiteWorkloads("SPECfp").size(), 6u);
    EXPECT_EQ(workloads::suiteWorkloads("mediabench").size(), 6u);
    EXPECT_EQ(workloads::workloadByName("mcf").paperInstsM, 410u);
    EXPECT_EQ(workloads::workloadByName("untst").paperInstsM, 96u);
}

TEST(PaperHeadlines, McfLeadsSpecintAndUntoastLeadsMediabench)
{
    // Section 5.2 of the paper singles out mcf and untoast as the
    // biggest winners of their suites. Verify the reproduction keeps
    // them clearly above their suite medians.
    auto speedup_of = [](const char *name) {
        const auto &w = workloads::workloadByName(name);
        const auto p = w.build(1);
        const auto base =
            sim::simulate(p, pipeline::MachineConfig::baseline());
        const auto opt =
            sim::simulate(p, pipeline::MachineConfig::optimized());
        return double(base.stats.cycles) / double(opt.stats.cycles);
    };
    const double mcf = speedup_of("mcf");
    const double gcc = speedup_of("gcc");
    const double untst = speedup_of("untst");
    const double mpg2d = speedup_of("mpg2d");
    const double amp = speedup_of("amp");

    EXPECT_GT(mcf, 1.1) << "mcf is a paper-highlighted winner";
    EXPECT_GT(mcf, gcc + 0.1);
    EXPECT_GT(untst, 1.2) << "untoast is the mediabench case study";
    EXPECT_GT(untst, mpg2d);
    EXPECT_LT(amp, 1.12) << "ammp gains ~nothing (paper: 1.00)";
    EXPECT_GT(amp, 0.95);
}
