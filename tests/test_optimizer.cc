/**
 * @file
 * Unit tests for the continuous optimizer's rename unit: constant
 * propagation, reassociation (the paper's SUB r1,1->r1 example),
 * strength reduction, move elimination, early branch resolution, branch
 * inference, address generation, and RLE/SF through the MBC -- plus the
 * intra-bundle dependence-depth limits of section 3.1.
 */

#include <gtest/gtest.h>

#include "src/arch/dyn_inst.hh"
#include "src/core/optimizer.hh"
#include "src/isa/exec.hh"
#include "src/pipeline/phys_reg_file.hh"

using namespace conopt;
using core::OptimizerConfig;
using core::OptResult;
using core::RenameUnit;
using isa::Opcode;

namespace {

/** Drives a RenameUnit directly with hand-built dynamic instructions. */
class OptimizerTest : public ::testing::Test
{
  protected:
    OptimizerTest() { rebuild(OptimizerConfig::full()); }

    void
    rebuild(const OptimizerConfig &config)
    {
        unit.reset(); // the unit references the register files
        iprf = std::make_unique<pipeline::PhysRegFile>(256);
        fprf = std::make_unique<pipeline::PhysRegFile>(64);
        unit = std::make_unique<RenameUnit>(config, *iprf, *fprf);
        std::array<uint64_t, isa::numIntRegs> ints{};
        std::array<uint64_t, isa::numFpRegs> fps{};
        regState = ints; // all zero
        unit->reset(ints, fps);
        markInitialReady();
        seq = 0;
        cycle = 100;
        unit->beginBundle();
    }

    void
    markInitialReady()
    {
        for (unsigned r = 0; r < isa::numIntRegs; ++r) {
            if (r == isa::zeroReg)
                continue;
            const auto p = unit->rat().read(isa::RegIndex(r)).mapping;
            iprf->setReadyAt(p, 0);
            iprf->setVfbAt(p, 0);
        }
    }

    /** Build + rename an integer reg-imm instruction, computing the
     *  oracle values from the tracked architectural state. */
    OptResult
    alu(Opcode op, unsigned ra, int64_t imm, unsigned rc)
    {
        arch::DynInst d;
        d.seq = seq++;
        d.pc = 0x10000 + d.seq * 4;
        d.inst.op = op;
        d.inst.ra = isa::RegIndex(ra);
        d.inst.useImm = true;
        d.inst.imm = imm;
        d.inst.rc = isa::RegIndex(rc);
        d.srcA = regState[ra];
        d.srcB = uint64_t(imm);
        d.result = isa::aluCompute(op, d.srcA, d.srcB);
        if (rc != isa::zeroReg)
            regState[rc] = d.result;
        return unit->renameInst(d, cycle);
    }

    OptResult
    aluRR(Opcode op, unsigned ra, unsigned rb, unsigned rc)
    {
        arch::DynInst d;
        d.seq = seq++;
        d.pc = 0x10000 + d.seq * 4;
        d.inst.op = op;
        d.inst.ra = isa::RegIndex(ra);
        d.inst.rb = isa::RegIndex(rb);
        d.inst.rc = isa::RegIndex(rc);
        d.srcA = regState[ra];
        d.srcB = regState[rb];
        d.result = isa::aluCompute(op, d.srcA, d.srcB);
        if (rc != isa::zeroReg)
            regState[rc] = d.result;
        return unit->renameInst(d, cycle);
    }

    OptResult
    branch(Opcode op, unsigned ra, bool taken_if, uint64_t target)
    {
        arch::DynInst d;
        d.seq = seq++;
        d.pc = 0x10000 + d.seq * 4;
        d.inst.op = op;
        d.inst.ra = isa::RegIndex(ra);
        d.inst.imm = int64_t(target);
        d.srcA = regState[ra];
        d.taken = taken_if;
        d.nextPc = taken_if ? target : d.pc + 4;
        return unit->renameInst(d, cycle);
    }

    OptResult
    load(Opcode op, unsigned rc, unsigned base, int64_t off,
         uint64_t oracle_value)
    {
        arch::DynInst d;
        d.seq = seq++;
        d.pc = 0x10000 + d.seq * 4;
        d.inst.op = op;
        d.inst.ra = isa::RegIndex(base);
        d.inst.rc = isa::RegIndex(rc);
        d.inst.imm = off;
        d.memAddr = regState[base] + uint64_t(off);
        d.memSize = isa::opInfo(op).memSize;
        d.result = oracle_value;
        if (rc != isa::zeroReg && !isa::opInfo(op).rcIsFp)
            regState[rc] = oracle_value;
        return unit->renameInst(d, cycle);
    }

    OptResult
    store(Opcode op, unsigned rc, unsigned base, int64_t off)
    {
        arch::DynInst d;
        d.seq = seq++;
        d.pc = 0x10000 + d.seq * 4;
        d.inst.op = op;
        d.inst.ra = isa::RegIndex(base);
        d.inst.rc = isa::RegIndex(rc);
        d.inst.imm = off;
        d.memAddr = regState[base] + uint64_t(off);
        d.memSize = isa::opInfo(op).memSize;
        d.srcC = regState[rc];
        d.result = d.srcC;
        return unit->renameInst(d, cycle);
    }

    void
    newBundle()
    {
        ++cycle;
        unit->beginBundle();
    }

    std::unique_ptr<pipeline::PhysRegFile> iprf;
    std::unique_ptr<pipeline::PhysRegFile> fprf;
    std::unique_ptr<RenameUnit> unit;
    std::array<uint64_t, isa::numIntRegs> regState{};
    uint64_t seq = 0;
    uint64_t cycle = 100;
};

} // namespace

TEST_F(OptimizerTest, ConstantMaterializationExecutesEarly)
{
    // li r1, 42 (LDA off the zero register).
    const auto r = alu(Opcode::LDA, isa::zeroReg, 42, 1);
    EXPECT_TRUE(r.earlyExecuted);
    EXPECT_EQ(r.earlyValue, 42u);
    EXPECT_EQ(r.schedClass, isa::OpClass::None);
    EXPECT_TRUE(unit->rat().read(1).sym.isConst());
}

TEST_F(OptimizerTest, ConstantPropagationThroughAdd)
{
    alu(Opcode::LDA, isa::zeroReg, 3, 3);
    newBundle();
    // The paper's example: addq r3, 4 -> r4 with r3 known to be 3.
    const auto r = alu(Opcode::ADDQ, 3, 4, 4);
    EXPECT_TRUE(r.earlyExecuted);
    EXPECT_EQ(r.earlyValue, 7u);
}

TEST_F(OptimizerTest, ReassociationCollapsesSubChain)
{
    // The paper's section 2.4 walkthrough: r1 starts unknown (a load's
    // destination); SUB r1,1->r1 twice must leave r1 = (p35) - 2 and the
    // second SUB executing directly on the original register.
    const auto ld = load(Opcode::LDQ, 1, isa::zeroReg, 0x2000, 555);
    const auto p35 = ld.destPreg;
    newBundle();
    const auto s1 = alu(Opcode::SUBQ, 1, 1, 1);
    EXPECT_FALSE(s1.earlyExecuted);
    ASSERT_EQ(s1.numDeps, 1u);
    EXPECT_EQ(s1.deps[0].reg, p35) << "rewritten to the original base";
    newBundle();
    const auto s2 = alu(Opcode::SUBQ, 1, 1, 1);
    ASSERT_EQ(s2.numDeps, 1u);
    EXPECT_EQ(s2.deps[0].reg, p35) << "chain collapsed, not serialized";
    const auto &sym = unit->rat().read(1).sym;
    EXPECT_EQ(sym.base, p35);
    EXPECT_EQ(sym.offset, uint64_t(-2));
}

TEST_F(OptimizerTest, ShiftFoldsIntoScaleField)
{
    const auto ld = load(Opcode::LDQ, 2, isa::zeroReg, 0x3000, 5);
    newBundle();
    const auto sh = alu(Opcode::SLL, 2, 3, 3);
    EXPECT_TRUE(sh.wasOptimized);
    const auto &sym = unit->rat().read(3).sym;
    EXPECT_EQ(sym.base, ld.destPreg);
    EXPECT_EQ(sym.scale, 3);
    newBundle();
    // A further shift would exceed the 2-bit scale: not representable.
    const auto sh2 = alu(Opcode::SLL, 3, 1, 4);
    EXPECT_TRUE(unit->rat().read(4).sym.isPureAlias());
    EXPECT_EQ(unit->rat().read(4).sym.base, sh2.destPreg);
}

TEST_F(OptimizerTest, MoveEliminationAliases)
{
    const auto ld = load(Opcode::LDQ, 1, isa::zeroReg, 0x4000, 9);
    newBundle();
    const auto mv = alu(Opcode::ADDQ, 1, 0, 2); // mov r1 -> r2
    EXPECT_TRUE(mv.earlyExecuted);
    EXPECT_TRUE(mv.moveEliminated);
    EXPECT_TRUE(mv.destAliased);
    EXPECT_EQ(mv.destPreg, ld.destPreg);
    EXPECT_EQ(unit->rat().read(2).mapping, ld.destPreg);
}

TEST_F(OptimizerTest, StrengthReductionMulByPowerOfTwo)
{
    const auto ld = load(Opcode::LDQ, 1, isa::zeroReg, 0x5000, 6);
    newBundle();
    // mul r1, 4 -> r2 becomes r1 << 2: folds into the scale field.
    const auto mul = alu(Opcode::MULQ, 1, 4, 2);
    EXPECT_TRUE(mul.wasOptimized);
    EXPECT_EQ(mul.schedClass, isa::OpClass::IntSimple);
    EXPECT_EQ(mul.execLatency, 1u);
    const auto &sym = unit->rat().read(2).sym;
    EXPECT_EQ(sym.base, ld.destPreg);
    EXPECT_EQ(sym.scale, 2);
    newBundle();
    // mul by a non-power stays complex.
    const auto mul3 = alu(Opcode::MULQ, 1, 3, 3);
    EXPECT_EQ(mul3.schedClass, isa::OpClass::IntComplex);
}

TEST_F(OptimizerTest, StrengthReducedMulWithKnownInputExecutesEarly)
{
    alu(Opcode::LDA, isa::zeroReg, 10, 1);
    newBundle();
    const auto mul = alu(Opcode::MULQ, 1, 8, 2);
    EXPECT_TRUE(mul.earlyExecuted) << "10*8 folds as a shift";
    EXPECT_EQ(mul.earlyValue, 80u);
    newBundle();
    const auto mul3 = alu(Opcode::MULQ, 1, 3, 3);
    EXPECT_FALSE(mul3.earlyExecuted)
        << "complex ops never execute in the optimizer (footnote 1)";
}

TEST_F(OptimizerTest, BranchWithKnownInputResolves)
{
    alu(Opcode::LDA, isa::zeroReg, 0, 1);
    newBundle();
    const auto br = branch(Opcode::BEQ, 1, true, 0x10100);
    EXPECT_TRUE(br.branchResolved);
    EXPECT_TRUE(br.branchTaken);
    EXPECT_TRUE(br.earlyExecuted);
    EXPECT_EQ(br.branchTarget, 0x10100u);
}

TEST_F(OptimizerTest, BranchInferenceProvesZero)
{
    const auto ld = load(Opcode::LDQ, 1, isa::zeroReg, 0x6000, 0);
    (void)ld;
    newBundle();
    regState[1] = 0;
    const auto br = branch(Opcode::BEQ, 1, true, 0x10200);
    EXPECT_FALSE(br.branchResolved) << "value unknown at rename";
    // But a taken beq proves r1 == 0 for everything downstream.
    EXPECT_TRUE(unit->rat().read(1).sym.isConst());
    EXPECT_EQ(unit->rat().read(1).sym.value, 0u);
    newBundle();
    const auto add = alu(Opcode::ADDQ, 1, 7, 2);
    EXPECT_TRUE(add.earlyExecuted);
    EXPECT_EQ(add.earlyValue, 7u);
}

TEST_F(OptimizerTest, AddressGenerationAtRename)
{
    alu(Opcode::LDA, isa::zeroReg, 0x7000, 1);
    newBundle();
    const auto ld = load(Opcode::LDQ, 2, 1, 16, 77);
    EXPECT_TRUE(ld.addrKnown);
    EXPECT_FALSE(ld.needsAgen);
    EXPECT_EQ(ld.numDeps, 0u);
}

TEST_F(OptimizerTest, RedundantLoadElimination)
{
    alu(Opcode::LDA, isa::zeroReg, 0x8000, 1);
    newBundle();
    const auto first = load(Opcode::LDQ, 2, 1, 0, 123);
    EXPECT_FALSE(first.loadRemoved) << "first touch misses the MBC";
    newBundle();
    const auto second = load(Opcode::LDQ, 3, 1, 0, 123);
    EXPECT_TRUE(second.loadRemoved);
    EXPECT_TRUE(second.destAliased);
    EXPECT_EQ(second.destPreg, first.destPreg)
        << "converted to a move and unified with the first load";
    EXPECT_TRUE(second.earlyExecuted);
}

TEST_F(OptimizerTest, StoreForwardingWithKnownData)
{
    alu(Opcode::LDA, isa::zeroReg, 0x9000, 1); // base
    alu(Opcode::LDA, isa::zeroReg, 42, 2);     // known data
    newBundle();
    regState[2] = 42;
    store(Opcode::STQ, 2, 1, 8);
    newBundle();
    const auto ld = load(Opcode::LDQ, 3, 1, 8, 42);
    EXPECT_TRUE(ld.loadRemoved);
    EXPECT_TRUE(ld.earlyExecuted);
    EXPECT_EQ(ld.earlyValue, 42u) << "forwarded constant";
}

TEST_F(OptimizerTest, StoreForwardingUnknownDataAliases)
{
    alu(Opcode::LDA, isa::zeroReg, 0xa000, 1);
    const auto data = load(Opcode::LDQ, 2, isa::zeroReg, 0xb000, 7);
    newBundle();
    store(Opcode::STQ, 2, 1, 0);
    newBundle();
    const auto ld = load(Opcode::LDQ, 3, 1, 0, 7);
    EXPECT_TRUE(ld.loadRemoved);
    EXPECT_TRUE(ld.destAliased);
    EXPECT_EQ(ld.destPreg, data.destPreg);
}

TEST_F(OptimizerTest, SubWordStoreForwardTransformsValue)
{
    alu(Opcode::LDA, isa::zeroReg, 0xc000, 1);
    alu(Opcode::LDA, isa::zeroReg, int64_t(0xfffff234), 2);
    newBundle();
    regState[2] = 0xfffff234;
    store(Opcode::STL, 2, 1, 0);
    newBundle();
    const auto ld = load(
        Opcode::LDL, 3, 1, 0,
        uint64_t(int64_t(int32_t(0xfffff234))));
    EXPECT_TRUE(ld.loadRemoved);
    EXPECT_TRUE(ld.earlyExecuted);
    EXPECT_EQ(ld.earlyValue, uint64_t(int64_t(int32_t(0xfffff234))));
}

TEST_F(OptimizerTest, IntraBundleDepthLimitsChainedAdds)
{
    // The paper's four-chained-adds example (section 3.1): with the
    // default depth, only the first add in a bundle is reassociated.
    const auto ld = load(Opcode::LDQ, 0, isa::zeroReg, 0xd000, 11);
    newBundle();
    const auto a1 = alu(Opcode::ADDQ, 0, 1, 2);   // r2 = r0 + 1
    const auto a2 = alu(Opcode::ADDQ, 2, 1, 3);   // r3 = r2 + 1 (chained)
    ASSERT_EQ(a1.numDeps, 1u);
    EXPECT_EQ(a1.deps[0].reg, ld.destPreg);
    ASSERT_EQ(a2.numDeps, 1u);
    EXPECT_EQ(a2.deps[0].reg, a1.destPreg)
        << "second add must depend on the first, not collapse onto r0";
}

TEST_F(OptimizerTest, DepthOneAllowsOneChainedAdd)
{
    auto cfg = OptimizerConfig::full();
    cfg.addChainDepth = 1;
    rebuild(cfg);
    const auto ld = load(Opcode::LDQ, 0, isa::zeroReg, 0xd100, 11);
    newBundle();
    const auto a1 = alu(Opcode::ADDQ, 0, 1, 2);
    const auto a2 = alu(Opcode::ADDQ, 2, 1, 3);
    const auto a3 = alu(Opcode::ADDQ, 3, 1, 4);
    EXPECT_EQ(a1.deps[0].reg, ld.destPreg);
    EXPECT_EQ(a2.deps[0].reg, ld.destPreg) << "one chained level allowed";
    EXPECT_EQ(a3.deps[0].reg, a2.destPreg) << "second level blocked";
}

TEST_F(OptimizerTest, ChainResumesAcrossBundles)
{
    const auto ld = load(Opcode::LDQ, 0, isa::zeroReg, 0xd200, 11);
    newBundle();
    alu(Opcode::ADDQ, 0, 1, 2);
    newBundle(); // next cycle: the RAT entry is visible again
    const auto a2 = alu(Opcode::ADDQ, 2, 1, 3);
    EXPECT_EQ(a2.deps[0].reg, ld.destPreg)
        << "across bundles the chain collapses onto the base";
}

TEST_F(OptimizerTest, BaselineModeDoesNothing)
{
    rebuild(OptimizerConfig::baseline());
    const auto li = alu(Opcode::LDA, isa::zeroReg, 42, 1);
    EXPECT_FALSE(li.earlyExecuted);
    EXPECT_EQ(li.schedClass, isa::OpClass::IntSimple);
    newBundle();
    const auto ld = load(Opcode::LDQ, 2, 1, 0, 5);
    EXPECT_FALSE(ld.addrKnown);
    EXPECT_TRUE(ld.needsAgen);
    EXPECT_FALSE(ld.loadRemoved);
}

TEST_F(OptimizerTest, FeedbackOnlyModeExecutesButDoesNotReassociate)
{
    rebuild(OptimizerConfig::feedbackOnly());
    // li via the zero register: sources known, executes early even in
    // feedback-only mode (the zero register is architecturally known).
    const auto li = alu(Opcode::LDA, isa::zeroReg, 5, 1);
    EXPECT_TRUE(li.earlyExecuted);
    newBundle();
    // But no symbolic propagation: the consumer's value is known only
    // through the feedback path (vfb was set by the harness at rename).
    iprf->setVfbAt(li.destPreg, cycle); // simulate the pipeline's update
    const auto add = alu(Opcode::ADDQ, 1, 2, 2);
    EXPECT_TRUE(add.earlyExecuted) << "known via feedback";
    newBundle();
    const auto mv = alu(Opcode::ADDQ, 2, 0, 3);
    EXPECT_FALSE(mv.moveEliminated) << "no move elimination";
}

TEST_F(OptimizerTest, StoreDataDependenceIsSeparate)
{
    const auto data = load(Opcode::LDQ, 2, isa::zeroReg, 0xe000, 3);
    const auto base = load(Opcode::LDQ, 1, isa::zeroReg, 0xe008, 0xf000);
    newBundle();
    regState[1] = 0xf000;
    const auto st = store(Opcode::STQ, 2, 1, 0);
    EXPECT_EQ(st.schedClass, isa::OpClass::Mem);
    ASSERT_EQ(st.numDeps, 1u) << "only the agen dependence schedules";
    EXPECT_EQ(st.deps[0].reg, base.destPreg);
    EXPECT_EQ(st.storeDataDep.reg, data.destPreg);
}

TEST_F(OptimizerTest, StatsAccumulate)
{
    alu(Opcode::LDA, isa::zeroReg, 1, 1);
    alu(Opcode::LDA, isa::zeroReg, 0x8000, 2);
    newBundle();
    load(Opcode::LDQ, 3, 2, 0, 9);
    newBundle();
    load(Opcode::LDQ, 4, 2, 0, 9);
    const auto &s = unit->stats();
    EXPECT_EQ(s.instsRenamed, 4u);
    EXPECT_EQ(s.memOps, 2u);
    EXPECT_EQ(s.loads, 2u);
    EXPECT_EQ(s.addrKnown, 2u);
    EXPECT_EQ(s.loadsRemoved, 1u);
    EXPECT_GE(s.earlyExecuted, 3u);
}
