/**
 * @file
 * Timing-model tests: branch-misprediction penalty calibration (Table 2:
 * 20 cycles minimum on the baseline, +2 with the optimizer, much less
 * when the optimizer resolves the branch at rename), IPC sanity,
 * in-order retirement, and physical-register leak checking.
 */

#include <gtest/gtest.h>

#include "src/arch/emulator.hh"
#include "src/asm/assembler.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/sim/simulator.hh"

using namespace conopt;
using namespace conopt::assembler;

namespace {

/**
 * Straight-line program with one conditional branch in the middle whose
 * taken target is its own fall-through, so taken/not-taken execute the
 * same instructions and any cycle difference is pure branch handling.
 *
 * @param taken branch actually taken (cold predictor says not-taken,
 *              so taken == mispredicted)
 * @param known_source condition register holds an immediate constant
 *        (resolvable by the optimizer) vs. a loaded value
 */
Program
branchProbe(bool taken, bool known_source)
{
    Assembler a;
    const uint64_t cell = a.dataQuads({1});
    if (known_source) {
        a.li(R1, 1);
    } else {
        a.li(R2, int64_t(cell));
        a.ldq(R1, 0, R2);
    }
    // Fully independent filler so completion time is fetch-bound and
    // the redirect bubble is visible end to end.
    for (int i = 0; i < 40; ++i)
        a.li(Reg(3 + (i % 8)), i);
    if (taken)
        a.bne(R1, "after"); // r1 == 1: taken, predicted not-taken
    else
        a.beq(R1, "after"); // not taken, predicted not-taken: correct
    a.label("after");
    for (int i = 0; i < 60; ++i)
        a.li(Reg(3 + (i % 8)), i);
    a.halt();
    return a.finish();
}

uint64_t
cyclesOf(const Program &p, const pipeline::MachineConfig &cfg)
{
    return sim::simulate(p, cfg).stats.cycles;
}

} // namespace

TEST(PipelineCalibration, BaselineMispredictPenaltyIsTwentyCycles)
{
    const auto cfg = pipeline::MachineConfig::baseline();
    const auto hit = branchProbe(false, true);
    const auto miss = branchProbe(true, true);
    const uint64_t penalty = cyclesOf(miss, cfg) - cyclesOf(hit, cfg);
    EXPECT_EQ(penalty, 20u) << "Table 2: 20 cycles (min) for BR res";
}

namespace {

/**
 * Branch probe with a floating-point condition: the optimizer never
 * tracks fp registers, so these branches are never resolved at rename
 * and the full (extended) recovery loop is exposed.
 */
Program
branchProbeFp(bool taken)
{
    Assembler a;
    a.li(R9, 1);
    a.cvtqt(R9, F1); // F1 = 1.0 (nonzero), ready long before the branch
    for (int i = 0; i < 40; ++i)
        a.li(Reg(3 + (i % 8)), i);
    if (taken)
        a.fbne(F1, "after"); // taken, cold predictor says not-taken
    else
        a.fbeq(F1, "after"); // not taken: predicted correctly
    a.label("after");
    for (int i = 0; i < 60; ++i)
        a.li(Reg(3 + (i % 8)), i);
    a.halt();
    return a.finish();
}

} // namespace

TEST(PipelineCalibration, OptimizerAddsTwoCyclesWhenNotResolvedEarly)
{
    // fp-condition branches cannot be resolved by the (integer-only)
    // optimizer, so the penalty difference between the two machines is
    // exactly the optimizer's two extra rename stages.
    const auto base_cfg = pipeline::MachineConfig::baseline();
    const auto opt_cfg = pipeline::MachineConfig::optimized();
    const auto hit = branchProbeFp(false);
    const auto miss = branchProbeFp(true);
    const uint64_t base_penalty =
        cyclesOf(miss, base_cfg) - cyclesOf(hit, base_cfg);
    const uint64_t opt_penalty =
        cyclesOf(miss, opt_cfg) - cyclesOf(hit, opt_cfg);
    EXPECT_EQ(opt_penalty, base_penalty + 2)
        << "two extra rename stages lengthen the recovery loop";
}

TEST(PipelineCalibration, EarlyResolutionSavesPostRenameCycles)
{
    const auto cfg = pipeline::MachineConfig::optimized();
    // Known condition: resolved at the end of the extended rename stage.
    const auto hit = branchProbe(false, true);
    const auto miss = branchProbe(true, true);
    const uint64_t early_penalty =
        cyclesOf(miss, cfg) - cyclesOf(hit, cfg);
    EXPECT_LT(early_penalty, 20u);
    EXPECT_GE(early_penalty, 10u);
}

TEST(Pipeline, IndependentOpsReachFetchWidthIpc)
{
    // A looped block so the I-cache warms up (straight-line cold code
    // is memory-latency bound, not width bound).
    Assembler a;
    a.li(R20, 64);
    a.label("rep");
    for (int i = 0; i < 512; ++i)
        a.addq(Reg(1 + (i % 16)), 1, Reg(1 + (i % 16)));
    a.subq(R20, 1, R20);
    a.bne(R20, "rep");
    a.halt();
    const auto r = sim::simulate(a.finish(),
                                 pipeline::MachineConfig::baseline());
    // 16 independent chains, 4-wide fetch/rename: IPC near 4.
    EXPECT_GT(r.stats.ipc(), 3.0);
}

TEST(Pipeline, SerialChainIsLatencyBound)
{
    Assembler a;
    a.li(R20, 64);
    a.label("rep");
    for (int i = 0; i < 256; ++i)
        a.addq(R1, 1, R1);
    a.subq(R20, 1, R20);
    a.bne(R20, "rep");
    a.halt();
    // Baseline: roughly one add per cycle.
    const auto base = sim::simulate(a.finish(),
                                    pipeline::MachineConfig::baseline());
    EXPECT_LE(base.stats.ipc(), 1.3);
}

TEST(Pipeline, OptimizerCollapsesSerialChain)
{
    Assembler a;
    a.li(R1, 5);
    a.li(R20, 64);
    a.label("rep");
    for (int i = 0; i < 256; ++i)
        a.addq(R1, 1, R1);
    a.subq(R20, 1, R20);
    a.bne(R20, "rep");
    a.halt();
    const auto base = sim::simulate(a.finish(),
                                    pipeline::MachineConfig::baseline());
    Assembler b;
    b.li(R1, 5);
    b.li(R20, 64);
    b.label("rep");
    for (int i = 0; i < 256; ++i)
        b.addq(R1, 1, R1);
    b.subq(R20, 1, R20);
    b.bne(R20, "rep");
    b.halt();
    const auto opt = sim::simulate(b.finish(),
                                   pipeline::MachineConfig::optimized());
    // Every add folds to a constant: the serial chain becomes
    // fetch-bound instead of 1 IPC.
    EXPECT_GT(opt.stats.ipc(), 2.5 * base.stats.ipc());
    EXPECT_GT(opt.stats.execEarlyFrac(), 0.90);
}

TEST(Pipeline, LoadLatencyObserved)
{
    Assembler a;
    const uint64_t cell = a.dataQuads({0x10});
    a.li(R2, int64_t(cell));
    // Pointer-chase style serial loads (address depends on prior load).
    const int n = 500;
    a.ldq(R1, 0, R2);
    for (int i = 0; i < n; ++i) {
        a.and_(R1, 0, R1);       // r1 = 0 (depends on load)
        a.addq(R1, int64_t(cell), R3);
        a.ldq(R1, 0, R3);        // serial load
    }
    a.halt();
    const auto r = sim::simulate(a.finish(),
                                 pipeline::MachineConfig::baseline());
    // Each iteration needs at least the 2-cycle L1 latency plus agen.
    EXPECT_GT(double(r.stats.cycles), 4.0 * n);
}

TEST(Pipeline, StoreLoadForwardingThroughStoreQueue)
{
    Assembler a;
    const uint64_t buf = a.allocQuads(1);
    a.li(R1, int64_t(buf));
    a.li(R2, 99);
    for (int i = 0; i < 100; ++i) {
        a.addq(R2, 1, R2);
        a.stq(R2, 0, R1);
        a.ldq(R3, 0, R1); // must see the store's value
        a.addq(R3, 0, R4);
    }
    a.halt();
    // Run on the baseline (no MBC): the LSQ must forward.
    const auto r = sim::simulate(a.finish(),
                                 pipeline::MachineConfig::baseline());
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.stats.loadsForwardedFromStoreQ, 50u);
}

TEST(Pipeline, NoPhysicalRegisterLeaks)
{
    Assembler a;
    const uint64_t buf = a.allocQuads(32);
    a.li(R1, int64_t(buf));
    a.li(R2, 200);
    a.label("loop");
    a.and_(R2, 31, R3);
    a.sll(R3, 3, R3);
    a.addq(R1, R3, R4);
    a.stq(R2, 0, R4);
    a.ldq(R5, 0, R4);
    a.addq(R5, R5, R6);
    a.subq(R2, 1, R2);
    a.bne(R2, "loop");
    a.halt();
    Program p = a.finish();

    arch::Emulator emu(p);
    pipeline::OooCore core(pipeline::MachineConfig::optimized(), emu);
    core.run();
    // After the pipeline drains, live registers are only the RAT
    // mappings/symbolic bases and MBC-held entries.
    const unsigned live = core.intPrf().allocatedCount();
    EXPECT_GE(live, 31u);
    EXPECT_LE(live, 31u + 31u + 128u);
    EXPECT_LE(core.fpPrf().allocatedCount(), 32u);
}

TEST(Pipeline, RetiredCountMatchesEmulator)
{
    Assembler a;
    a.li(R1, 100);
    a.label("loop");
    a.subq(R1, 1, R1);
    a.bne(R1, "loop");
    a.halt();
    Program p = a.finish();
    arch::Emulator ref(p);
    ref.run();
    for (const auto &cfg : {pipeline::MachineConfig::baseline(),
                            pipeline::MachineConfig::optimized()}) {
        const auto r = sim::simulate(p, cfg);
        EXPECT_EQ(r.instructions, ref.instCount());
        EXPECT_EQ(r.stats.retired, ref.instCount());
        EXPECT_TRUE(r.halted);
    }
}

TEST(Pipeline, ProgramWithoutHaltDrains)
{
    Assembler a;
    for (int i = 0; i < 50; ++i)
        a.addq(R1, 1, R1);
    a.label("spin");
    a.br("spin");
    const auto r =
        sim::simulate(a.finish(), pipeline::MachineConfig::baseline(),
                      /*max_insts=*/500);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.stats.retired, 500u);
}

TEST(Pipeline, RetireWidthBoundsThroughput)
{
    // IPC can never exceed the retire width (Table 2: 6).
    Assembler a;
    for (int i = 0; i < 2000; ++i)
        a.addq(Reg(1 + (i % 20)), 1, Reg(1 + (i % 20)));
    a.halt();
    const auto r = sim::simulate(a.finish(),
                                 pipeline::MachineConfig::optimized());
    EXPECT_LE(r.stats.ipc(), 6.0);
}

TEST(MachineConfig, PresetsMatchTable2)
{
    const auto c = pipeline::MachineConfig::baseline();
    EXPECT_EQ(c.fetchWidth, 4u);
    EXPECT_EQ(c.retireWidth, 6u);
    EXPECT_EQ(c.robEntries, 160u);
    EXPECT_EQ(c.schedEntries, 8u);
    EXPECT_EQ(c.numSimpleAlu, 4u);
    EXPECT_EQ(c.numComplexAlu, 1u);
    EXPECT_EQ(c.numFpAlu, 2u);
    EXPECT_EQ(c.numAgen, 2u);
    EXPECT_EQ(c.bp.historyBits, 18u);
    EXPECT_EQ(c.bp.btbEntries, 1024u);
    EXPECT_EQ(c.hier.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.hier.l2.latency, 10u);
    EXPECT_EQ(c.hier.memLatency, 100u);
    EXPECT_FALSE(c.opt.enabled);

    const auto o = pipeline::MachineConfig::optimized();
    EXPECT_TRUE(o.opt.enabled);
    EXPECT_EQ(o.opt.extraStages, 2u);
    EXPECT_EQ(o.opt.mbc.entries, 128u);
    EXPECT_EQ(o.renameDepth(), c.renameDepth() + 2);

    EXPECT_EQ(pipeline::MachineConfig::fetchBound(false).schedEntries,
              16u);
    EXPECT_EQ(pipeline::MachineConfig::execBound(false).fetchWidth, 8u);
}
