/**
 * @file
 * conopt_sweep distributed-driver tests.
 *
 * The load-bearing properties:
 *   - the driver-merged artifact is byte-identical to the unsharded
 *     run (after the canonical sort + geomean recompute the driver
 *     performs), so one-command distribution never changes the
 *     science;
 *   - a crashed, killed, or hung shard is a hard failure (exit 2)
 *     with its captured stderr surfaced — never a silently thinner
 *     merged artifact (a shard that "succeeds" without writing its
 *     artifact is caught too);
 *   - bounded retry recovers a transient shard failure without
 *     double-counting its partial artifact;
 *   - CLI / launcher-template / progress-line parsing rejects
 *     malformed input up front.
 *
 * The test binary doubles as the bench binary the driver launches:
 * when CONOPT_DRIVER_TEST_CHILD is set, main() dispatches to a child
 * mode (a real 6-job sweep through the bench harness, a crash, a
 * SIGKILL, a hang, or a fail-once-then-succeed bench) instead of
 * running GoogleTest, so the whole spawn/stream/retry/merge/gate path
 * is exercised with no fixtures outside the build tree.
 */

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.hh"
#include "src/sim/baseline.hh"
#include "src/sim/driver.hh"
#include "src/sim/sweep.hh"

using namespace conopt;
namespace fs = std::filesystem;

namespace {

/** The sweep every "bench" child runs: 3 workloads x 2 machines. */
sim::SweepSpec
childSpec()
{
    sim::SweepSpec spec;
    spec.workloads({"untst", "mcf", "g721d"})
        .config("base", pipeline::MachineConfig::baseline())
        .config("opt", pipeline::MachineConfig::optimized());
    return spec;
}

/** The bench name the child reports; must match this binary's
 *  basename so the driver's derived name finds the artifacts. */
constexpr const char *kChildBench = "test_sweep_driver";

// Sanitizer instrumentation slows the simulated work inside each shard
// several-fold, so the lingering-child test scales the straggler's
// sleep and the finalize deadline together — the test must keep
// discriminating "finalized on the shard's own exit" from "waited the
// straggler out for pipe EOF" at either speed.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kLingerDeciseconds = 900;
// Must stay well under the straggler's 90 s sleep to keep its
// discriminating power, but high enough that sanitized shards on a
// contended CI box don't trip it on the pass path.
constexpr double kFinalizeBoundSeconds = 70.0;
#else
constexpr int kLingerDeciseconds = 300;
constexpr double kFinalizeBoundSeconds = 15.0;
#endif

std::string
shardArgOf(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--shard") == 0)
            return argv[i + 1];
    return "none";
}

/** Child-mode entry: this binary re-exec'd by the driver as a shard. */
int
childMain(const std::string &mode, int argc, char **argv)
{
    if (mode == "crash") {
        std::fprintf(stderr, "boom: injected shard crash\n");
        return 3;
    }
    if (mode == "kill") {
        std::fprintf(stderr, "about to die to SIGKILL\n");
        std::fflush(nullptr);
        ::raise(SIGKILL);
        return 9; // unreachable
    }
    if (mode == "hang") {
        std::fprintf(stderr, "hanging until killed\n");
        std::fflush(nullptr);
        for (;;)
            ::pause();
    }
    if (mode == "flaky") {
        // Fail exactly once per shard (a marker file remembers the
        // first attempt), then behave like a normal bench.
        const char *dir = std::getenv("CONOPT_DRIVER_TEST_MARKER");
        if (!dir) {
            std::fprintf(stderr, "flaky mode without marker dir\n");
            return 4;
        }
        std::string shard = shardArgOf(argc, argv);
        for (auto &c : shard)
            if (c == '/')
                c = '_';
        const std::string marker =
            std::string(dir) + "/attempt." + shard;
        if (!fs::exists(marker)) {
            if (std::FILE *f = std::fopen(marker.c_str(), "w"))
                std::fclose(f);
            std::fprintf(stderr, "flaky: injected transient failure\n");
            return 1;
        }
    } else if (mode == "linger") {
        // Leak our stdout/stderr/progress write ends to a background
        // child that outlives us: the classic fd-inheriting daemonized
        // helper. The driver must finalize this shard on its own exit
        // shortly after, not wait the straggler out for pipe EOF.
        if (::fork() == 0) {
            for (int i = 0; i < kLingerDeciseconds; ++i)
                ::usleep(100000);
            ::_exit(0);
        }
    } else if (mode != "bench") {
        std::fprintf(stderr, "unknown child mode '%s'\n", mode.c_str());
        return 4;
    }
    const bench::HarnessOptions hopts = bench::harnessInit(argc, argv);
    sim::SweepRunner runner(hopts.sweepOptions());
    const auto res = runner.run(childSpec());
    return bench::finishSweep(kChildBench, res, "base", {"opt"}, hopts);
}

/** Scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("conopt_test_sweep_driver_" +
                std::to_string(uint64_t(::getpid())) + "_" +
                std::to_string(counter()++));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }

    static unsigned &
    counter()
    {
        static unsigned c = 0;
        return c;
    }
};

/** setenv for the lifetime of a test (driver children inherit it). */
struct EnvGuard
{
    std::string name;

    EnvGuard(const char *n, const std::string &v) : name(n)
    {
        ::setenv(n, v.c_str(), 1);
    }
    ~EnvGuard() { ::unsetenv(name.c_str()); }
};

std::string
selfExePath()
{
    return fs::read_symlink("/proc/self/exe").string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Driver options pointing at this binary in child-bench mode. */
sim::DriverOptions
childDriverOptions(const TempDir &tmp, unsigned shards)
{
    sim::DriverOptions o;
    o.benchPath = selfExePath();
    o.benchName = kChildBench;
    o.shards = shards;
    o.run.artifactDir = tmp.path.string();
    return o;
}

/** The unsharded in-process reference artifact, canonicalized the way
 *  the driver canonicalizes its merge. */
sim::BenchArtifact
referenceArtifact()
{
    sim::SweepRunner full({2, nullptr});
    const auto res = full.run(childSpec());
    auto art = sim::BenchArtifact::fromSweep(res);
    art.bench = kChildBench;
    art.sortJobsByLabel();
    art.addGeomeansFromJobs("base", {"opt"});
    return art;
}

} // namespace

int
main(int argc, char **argv)
{
    if (const char *mode = std::getenv("CONOPT_DRIVER_TEST_CHILD"))
        return childMain(mode, argc, argv);
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

// ---------------------------------------------------------------------------
// Progress line protocol.
// ---------------------------------------------------------------------------

TEST(ProgressLine, FormatParseRoundTripsExactly)
{
    sim::SweepProgress p;
    p.done = 3;
    p.total = 11;
    p.label = "mcf/base";
    p.jobHostSeconds = 0.1257;
    p.totalHostSeconds = 1.03125;
    p.elapsedSeconds = 2.5;
    p.etaSeconds = 7.333333333333333;
    p.geomeanIpc = 1.0213897;

    const std::string line = sim::formatProgressLine(p);
    EXPECT_EQ(line.rfind(sim::kProgressLineTag, 0), 0u) << line;

    sim::SweepProgress q;
    ASSERT_TRUE(sim::parseProgressLine(line, &q)) << line;
    EXPECT_EQ(q.done, p.done);
    EXPECT_EQ(q.total, p.total);
    EXPECT_EQ(q.label, p.label);
    // %.17g is lossless for doubles, so the round trip is exact.
    EXPECT_EQ(q.jobHostSeconds, p.jobHostSeconds);
    EXPECT_EQ(q.totalHostSeconds, p.totalHostSeconds);
    EXPECT_EQ(q.elapsedSeconds, p.elapsedSeconds);
    EXPECT_EQ(q.etaSeconds, p.etaSeconds);
    EXPECT_EQ(q.geomeanIpc, p.geomeanIpc);

    // A trailing newline (the wire form) is tolerated.
    EXPECT_TRUE(sim::parseProgressLine(line + "\n", &q));
}

TEST(ProgressLine, DaemonKeysRoundTripAndStayOffTheEphemeralWire)
{
    // Daemon-backed shards annotate the stream with their queue depth
    // and warm-session count; an ephemeral shard (both zero) must emit
    // byte-identical v1 lines to the pre-daemon protocol.
    sim::SweepProgress p;
    p.done = 2;
    p.total = 4;
    p.label = "gzp/opt";
    const std::string bare = sim::formatProgressLine(p);
    EXPECT_EQ(bare.find("queue_depth="), std::string::npos) << bare;
    EXPECT_EQ(bare.find("sessions="), std::string::npos) << bare;

    p.queueDepth = 3;
    p.sessions = 2;
    const std::string line = sim::formatProgressLine(p);
    sim::SweepProgress q;
    ASSERT_TRUE(sim::parseProgressLine(line, &q)) << line;
    EXPECT_EQ(q.queueDepth, 3u);
    EXPECT_EQ(q.sessions, 2u);
    EXPECT_EQ(q.label, "gzp/opt");

    // A v1 parser that predates the keys sees them as unknown
    // key=value tokens — and unknown keys are skipped, so the new
    // wire form stays parseable (regression: forward compatibility).
    ASSERT_TRUE(sim::parseProgressLine(
        "CONOPT-PROGRESS v1 done=2 total=4 queue_depth=3 sessions=2 "
        "brand_new_key=7 label=gzp/opt",
        &q));
    EXPECT_EQ(q.queueDepth, 3u);
    EXPECT_EQ(q.label, "gzp/opt");
}

TEST(ProgressLine, RejectsMalformedLines)
{
    sim::SweepProgress q;
    for (const char *bad : {
             "",
             "CONOPT-PROGRESS",
             "CONOPT-PROGRESS v1",
             "CONOPT-PROGRESS v2 done=1 total=2 label=x", // wrong version
             "CONOPT-PROGRESS v1 done=x total=2 label=x", // bad number
             "CONOPT-PROGRESS v1 done=1 total=2",         // no label
             "CONOPT-PROGRESS v1 done=1 label=x",         // no total
             "CONOPT-PROGRESS v1 total=2 label=x",        // no done
             "CONOPT-PROGRESS v1 done=1 total=2 eta_s=nope label=x",
             "[sweep]   9/44  gzp/base  12.31s", // the human line
         })
        EXPECT_FALSE(sim::parseProgressLine(bad, &q)) << bad;

    // Unknown keys are skipped (forward compatibility within v1).
    EXPECT_TRUE(sim::parseProgressLine(
        "CONOPT-PROGRESS v1 done=1 total=2 newfield=zzz label=x", &q));
    EXPECT_EQ(q.label, "x");
}

// ---------------------------------------------------------------------------
// Connect-mode scheduling: healthz parsing and the least-loaded pick.
// The probe is injected as a lambda, so these cover the policy without
// any sockets or daemons.
// ---------------------------------------------------------------------------

TEST(ConnectScheduling, ParsesQueueDepthFromHealthzJson)
{
    uint64_t d = 77;
    // A realistic conopt_served healthz body.
    EXPECT_TRUE(sim::parseHealthzQueueDepth(
        "{\"ok\":true,\"uptime_s\":12.5,\"requests\":4,"
        "\"queue_depth\":3,\"benches\":[\"table1\"]}",
        &d));
    EXPECT_EQ(d, 3u);
    // Whitespace after the colon and a large depth.
    EXPECT_TRUE(sim::parseHealthzQueueDepth(
        "{\"queue_depth\":   18446744073709551615}", &d));
    EXPECT_EQ(d, UINT64_MAX);
    // Missing key, or a key with garbage where digits belong: d is
    // left alone.
    d = 77;
    EXPECT_FALSE(sim::parseHealthzQueueDepth("{\"ok\":true}", &d));
    EXPECT_FALSE(
        sim::parseHealthzQueueDepth("{\"queue_depth\":\"busy\"}", &d));
    EXPECT_FALSE(sim::parseHealthzQueueDepth("", &d));
    EXPECT_EQ(d, 77u);
}

TEST(ConnectScheduling, PicksStrictlySmallestQueueDepth)
{
    const std::vector<std::string> eps{"a:1", "b:1", "c:1"};
    size_t probes = 0;
    const sim::HealthzProbeFn probe = [&](const std::string &ep,
                                          uint64_t *depth) {
        ++probes;
        *depth = ep == "a:1" ? 5 : ep == "b:1" ? 1 : 3;
        return true;
    };
    // Least-loaded wins from any rotation; every endpoint is probed
    // exactly once per pick.
    for (size_t rot = 0; rot < 6; ++rot) {
        probes = 0;
        EXPECT_EQ(sim::pickConnectEndpoint(eps, rot, probe), 1u)
            << "rotation " << rot;
        EXPECT_EQ(probes, eps.size());
    }
}

TEST(ConnectScheduling, RotationBreaksTiesLikeBlindRoundRobin)
{
    const std::vector<std::string> eps{"a:1", "b:1", "c:1"};
    const sim::HealthzProbeFn flat = [](const std::string &,
                                        uint64_t *depth) {
        *depth = 2;
        return true;
    };
    // An evenly loaded fleet reproduces the historical rotating
    // round-robin schedule exactly.
    for (size_t rot = 0; rot < 7; ++rot)
        EXPECT_EQ(sim::pickConnectEndpoint(eps, rot, flat), rot % 3)
            << "rotation " << rot;
}

TEST(ConnectScheduling, FailedProbesCountAsInfinitelyBusy)
{
    const std::vector<std::string> eps{"dead:1", "busy:1", "idle:1"};
    const sim::HealthzProbeFn probe = [](const std::string &ep,
                                         uint64_t *depth) {
        if (ep == "dead:1")
            return false;
        *depth = ep == "busy:1" ? 9 : 0;
        return true;
    };
    // The dead daemon never wins, even when rotation starts on it.
    EXPECT_EQ(sim::pickConnectEndpoint(eps, 0, probe), 2u);
    // And a reachable-but-busy daemon still beats an unreachable one.
    const std::vector<std::string> two{"dead:1", "busy:1"};
    EXPECT_EQ(sim::pickConnectEndpoint(two, 0, probe), 1u);
}

TEST(ConnectScheduling, AllProbesFailingFallsBackToRotationSlot)
{
    const std::vector<std::string> eps{"a:1", "b:1", "c:1"};
    const sim::HealthzProbeFn dead = [](const std::string &, uint64_t *) {
        return false;
    };
    // Nothing answered: behave exactly like the blind rotation so the
    // subsequent attempt surfaces the real connection error.
    for (size_t rot = 0; rot < 5; ++rot)
        EXPECT_EQ(sim::pickConnectEndpoint(eps, rot, dead), rot % 3)
            << "rotation " << rot;
}

// ---------------------------------------------------------------------------
// Launcher templates and shard command composition.
// ---------------------------------------------------------------------------

TEST(LauncherTemplate, SubstitutesPlaceholders)
{
    sim::LauncherVars vars{"1", "4", "'./bench' '--shard' '1/4'", "hostA"};
    std::string out, err;
    ASSERT_TRUE(
        sim::expandLauncher("srun -n1 {cmd}", vars, &out, &err))
        << err;
    EXPECT_EQ(out, "srun -n1 './bench' '--shard' '1/4'");

    ASSERT_TRUE(sim::expandLauncher("wrap {i}/{n} on {host}", vars, &out,
                                    &err))
        << err;
    // No {cmd} in the template: the bench command is appended.
    EXPECT_EQ(out, "wrap 1/4 on hostA './bench' '--shard' '1/4'");
}

TEST(LauncherTemplate, RejectsMalformedTemplates)
{
    sim::LauncherVars vars{"0", "2", "cmd", ""};
    std::string out, err;
    EXPECT_FALSE(sim::expandLauncher("echo {oops} {cmd}", vars, &out,
                                     &err));
    EXPECT_NE(err.find("unknown placeholder"), std::string::npos) << err;
    EXPECT_FALSE(sim::expandLauncher("echo {cmd", vars, &out, &err));
    EXPECT_NE(err.find("unclosed"), std::string::npos) << err;
    EXPECT_FALSE(sim::expandLauncher("{host} {cmd}", vars, &out, &err));
    EXPECT_NE(err.find("{host}"), std::string::npos) << err;
}

TEST(ShellQuote, QuotesHostileStrings)
{
    EXPECT_EQ(sim::shellQuote("plain"), "'plain'");
    EXPECT_EQ(sim::shellQuote("a b"), "'a b'");
    EXPECT_EQ(sim::shellQuote("it's"), "'it'\\''s'");
}

TEST(ShardArtifactName, MatchesHarnessConvention)
{
    EXPECT_EQ(sim::shardArtifactName("fig6_speedup", 1, 2),
              "BENCH_fig6_speedup.shard1of2.json");
    // An unsharded "fleet of one" writes the plain artifact name.
    EXPECT_EQ(sim::shardArtifactName("fig6_speedup", 0, 1),
              "BENCH_fig6_speedup.json");
}

TEST(BuildShardArgv, LocalDirectExec)
{
    sim::DriverOptions o;
    o.benchPath = "/bin/bench_bin";
    o.benchName = "bench_bin";
    o.shards = 2;
    o.run.artifactDir = "out";
    o.run.resultCacheDir = "rc";
    std::string err;
    const auto argv = sim::buildShardArgv(o, 1, &err);
    const std::vector<std::string> want = {
        "/bin/bench_bin", "--shard",       "1/2",
        "--artifact-dir", "out/bench_bin.shards",
        "--result-cache", "rc",
        "--progress-fd",  "3"};
    EXPECT_EQ(argv, want);
}

TEST(BuildShardArgv, LauncherWrapsThroughShell)
{
    sim::DriverOptions o;
    o.benchPath = "./bench";
    o.benchName = "bench";
    o.shards = 2;
    o.launcher = "nice -n 19 {cmd}";
    std::string err;
    const auto argv = sim::buildShardArgv(o, 0, &err);
    ASSERT_EQ(argv.size(), 3u);
    EXPECT_EQ(argv[0], "/bin/sh");
    EXPECT_EQ(argv[1], "-c");
    EXPECT_EQ(argv[2].rfind("nice -n 19 './bench'", 0), 0u) << argv[2];
}

TEST(BuildShardArgv, SshRoundRobinsHostsWithoutProgressFd)
{
    sim::DriverOptions o;
    o.benchPath = "./bench";
    o.benchName = "bench";
    o.shards = 4;
    o.sshHosts = {"h1", "h2"};
    std::string err;
    const auto a3 = sim::buildShardArgv(o, 3, &err);
    ASSERT_EQ(a3.size(), 4u);
    EXPECT_EQ(a3[0], "ssh");
    EXPECT_EQ(a3[2], "h2"); // shard 3 of hosts {h1, h2}
    EXPECT_EQ(a3[3].rfind("cd ", 0), 0u) << a3[3];
    EXPECT_NE(a3[3].find("--shard' '3/4'"), std::string::npos) << a3[3];
    // A pipe fd cannot cross ssh, so no --progress-fd remotely.
    EXPECT_EQ(a3[3].find("--progress-fd"), std::string::npos) << a3[3];
}

TEST(BuildShardArgv, LauncherWithSshHostsRotatesHostPlaceholder)
{
    // The documented remote-timeout recipe: the template takes over
    // the wrapping, --ssh supplies the {host} rotation.
    sim::DriverOptions o;
    o.benchPath = "./bench";
    o.benchName = "bench";
    o.shards = 4;
    o.launcher = "ssh {host} timeout 3600 {cmd}";
    o.sshHosts = {"h1", "h2"};
    std::string err;
    const auto a0 = sim::buildShardArgv(o, 0, &err);
    const auto a3 = sim::buildShardArgv(o, 3, &err);
    ASSERT_EQ(a0.size(), 3u) << err;
    EXPECT_EQ(a0[0], "/bin/sh");
    EXPECT_EQ(a0[2].rfind("ssh h1 timeout 3600 ", 0), 0u) << a0[2];
    EXPECT_EQ(a3[2].rfind("ssh h2 timeout 3600 ", 0), 0u) << a3[2];
    // Remote shards get no --progress-fd pipe.
    EXPECT_EQ(a3[2].find("--progress-fd"), std::string::npos) << a3[2];
}

// ---------------------------------------------------------------------------
// CLI parsing.
// ---------------------------------------------------------------------------

TEST(ParseDriverArgs, AcceptsAFullyLoadedCommandLine)
{
    sim::DriverOptions o;
    std::string err;
    ASSERT_TRUE(sim::parseDriverArgs(
        {"--shards", "4", "--baseline", "bench/baselines",
         "--result-cache", "rc", "--recompute-geomeans", "base",
         "--timeout", "2.5", "--retries", "0", "--artifact-dir", "out",
         "--tolerance", "0.01", "fig6_speedup", "--", "--progress"},
        &o, &err))
        << err;
    EXPECT_EQ(o.shards, 4u);
    EXPECT_EQ(o.benchPath, "fig6_speedup");
    EXPECT_EQ(o.benchName, "fig6_speedup");
    EXPECT_EQ(o.run.baselinePath, "bench/baselines");
    EXPECT_EQ(o.run.resultCacheDir, "rc");
    EXPECT_EQ(o.geomeanBase, "base");
    EXPECT_DOUBLE_EQ(o.timeoutSeconds, 2.5);
    EXPECT_EQ(o.retries, 0u);
    EXPECT_DOUBLE_EQ(o.run.tolerance, 0.01);
    EXPECT_EQ(o.run.artifactDir, "out");
    EXPECT_EQ(o.benchArgs, std::vector<std::string>{"--progress"});

    // A path-y bench derives its name from the basename.
    ASSERT_TRUE(sim::parseDriverArgs({"build/table1_workloads"}, &o,
                                     &err))
        << err;
    EXPECT_EQ(o.benchName, "table1_workloads");

    // The remote-timeout recipe: a launcher template composes with
    // --ssh, which supplies the {host} rotation.
    ASSERT_TRUE(sim::parseDriverArgs({"--launcher",
                                      "ssh {host} timeout 60 {cmd}",
                                      "--ssh", "h1,h2", "b"},
                                     &o, &err))
        << err;
    EXPECT_EQ(o.sshHosts.size(), 2u);

    // --connect: a comma-separated endpoint rotation; the bench is a
    // registered name, not a spawned path.
    ASSERT_TRUE(sim::parseDriverArgs(
        {"--connect", "hostA:7070,unix:/run/conopt.sock",
         "table1_workloads"},
        &o, &err))
        << err;
    ASSERT_EQ(o.connectHosts.size(), 2u);
    EXPECT_EQ(o.connectHosts[0], "hostA:7070");
    EXPECT_EQ(o.connectHosts[1], "unix:/run/conopt.sock");
    EXPECT_EQ(o.benchName, "table1_workloads");
}

TEST(ParseDriverArgs, RejectsMalformedInput)
{
    sim::DriverOptions o;
    std::string err;
    const std::vector<std::vector<std::string>> bad = {
        {},                                    // missing bench
        {"--shards", "0", "b"},                // zero shards
        {"--shards", "2x", "b"},               // trailing garbage
        {"--shards", "-1", "b"},               // negative
        {"--shards", "b"},                     // missing value... "b" eaten
        {"--retries", "-2", "b"},              // negative retries
        {"--retries", "abc", "b"},             // garbage retries
        {"--timeout", "abc", "b"},             // garbage timeout
        {"--timeout", "-1", "b"},              // negative timeout
        {"--tolerance", "x", "b"},             // garbage tolerance
        {"--recompute-geomeans", "", "b"},     // empty base config
        {"--bench-name", "a/b", "b"},          // separator in name
        {"--launcher", "", "b"},               // empty template
        {"--launcher", "echo {oops}", "b"},    // unknown placeholder
        {"--launcher", "echo {i", "b"},        // unclosed brace
        {"--launcher", "{host} {cmd}", "b"},   // {host} without --ssh
        {"--ssh", "a,,b", "b"},                // empty host
        {"--ssh", "", "b"},                    // empty host list
        // --ssh with a template that never uses {host}: every shard
        // would silently run locally.
        {"--ssh", "h1,h2", "--launcher", "nice {cmd}", "b"},
        {"--connect", "", "b"},                // empty endpoint list
        {"--connect", "a:1,,b:2", "b"},        // empty endpoint
        // --connect drives a standing fleet; spawning flags make no
        // sense alongside it.
        {"--connect", "a:1", "--launcher", "nice {cmd}", "b"},
        {"--connect", "a:1", "--ssh", "h1", "b"},
        {"--bogus", "b"},                      // unknown flag
        {"bench1", "bench2"},                  // two positionals
    };
    for (const auto &args : bad) {
        EXPECT_FALSE(sim::parseDriverArgs(args, &o, &err))
            << "accepted:" << ::testing::PrintToString(args);
        EXPECT_FALSE(err.empty());
    }
}

// ---------------------------------------------------------------------------
// End-to-end: spawn, stream, merge, gate.
// ---------------------------------------------------------------------------

TEST(SweepDriverRun, MergedArtifactByteIdenticalToUnshardedRun)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "bench");

    auto o = childDriverOptions(tmp, 2);
    o.geomeanBase = "base";
    const auto out = sim::runSweepDriver(o);
    ASSERT_EQ(out.exitCode, 0) << out.error;
    ASSERT_EQ(out.shards.size(), 2u);
    for (const auto &s : out.shards) {
        EXPECT_TRUE(s.ok) << "shard " << s.index;
        EXPECT_EQ(s.attempts, 1u);
        EXPECT_FALSE(s.timedOut);
        // 3 jobs per shard, one CONOPT-PROGRESS line per job.
        EXPECT_EQ(s.progressLines, 3u) << "shard " << s.index;
    }
    ASSERT_FALSE(out.mergedArtifactPath.empty());

    const std::string mergedJson = readFile(out.mergedArtifactPath);
    ASSERT_FALSE(mergedJson.empty());
    EXPECT_EQ(mergedJson, referenceArtifact().toJson());
}

TEST(SweepDriverRun, SingleShardRunStillMergesAndWritesArtifact)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "bench");

    auto o = childDriverOptions(tmp, 1);
    o.geomeanBase = "base";
    const auto out = sim::runSweepDriver(o);
    ASSERT_EQ(out.exitCode, 0) << out.error;
    EXPECT_EQ(readFile(out.mergedArtifactPath),
              referenceArtifact().toJson());
}

TEST(SweepDriverRun, GatesMergedArtifactAgainstBaseline)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "bench");

    auto baseline = referenceArtifact();
    std::string err;
    ASSERT_TRUE(baseline.save(tmp.file("baseline.json"), &err)) << err;

    auto o = childDriverOptions(tmp, 2);
    o.run.artifactDir = (tmp.path / "run_ok").string();
    o.geomeanBase = "base";
    o.run.baselinePath = tmp.file("baseline.json");
    EXPECT_EQ(sim::runSweepDriver(o).exitCode, 0);

    // Any cycle perturbation in the baseline must gate as drift (1),
    // with the offending label reported.
    baseline.jobs[0].cycles += 1;
    ASSERT_TRUE(baseline.save(tmp.file("drift.json"), &err)) << err;
    auto o2 = childDriverOptions(tmp, 2);
    o2.run.artifactDir = (tmp.path / "run_drift").string();
    o2.geomeanBase = "base";
    o2.run.baselinePath = tmp.file("drift.json");
    const auto drift = sim::runSweepDriver(o2);
    EXPECT_EQ(drift.exitCode, 1);
    EXPECT_FALSE(drift.gateDiffs.empty());
}

TEST(SweepDriverRun, CrashedShardFailsHardWithStderrSurfaced)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "crash");

    auto o = childDriverOptions(tmp, 2);
    o.retries = 1;
    const auto out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    EXPECT_NE(out.error.find("failed"), std::string::npos) << out.error;
    EXPECT_TRUE(out.mergedArtifactPath.empty())
        << "a failed fleet must not merge";
    ASSERT_EQ(out.shards.size(), 2u);
    for (const auto &s : out.shards) {
        EXPECT_FALSE(s.ok);
        EXPECT_EQ(s.exitStatus, 3);
        // The retry budget was spent before giving up.
        EXPECT_EQ(s.attempts, 2u);
        EXPECT_NE(s.outputTail.find("boom: injected shard crash"),
                  std::string::npos)
            << s.outputTail;
    }
}

TEST(SweepDriverRun, KilledShardMakesDriverExitNonzero)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "kill");

    auto o = childDriverOptions(tmp, 2);
    o.retries = 0;
    const auto out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    ASSERT_EQ(out.shards.size(), 2u);
    for (const auto &s : out.shards) {
        EXPECT_FALSE(s.ok);
        EXPECT_EQ(s.attempts, 1u);
        EXPECT_EQ(s.exitStatus, -SIGKILL);
    }
}

TEST(SweepDriverRun, HungShardIsKilledAtTheTimeout)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "hang");

    auto o = childDriverOptions(tmp, 1);
    o.retries = 0;
    o.timeoutSeconds = 0.5;
    const auto out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    ASSERT_EQ(out.shards.size(), 1u);
    EXPECT_FALSE(out.shards[0].ok);
    EXPECT_TRUE(out.shards[0].timedOut);
    EXPECT_EQ(out.shards[0].exitStatus, -SIGKILL);
}

TEST(SweepDriverRun, LingeringChildHoldingPipesDoesNotHangTheFleet)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "linger");

    auto o = childDriverOptions(tmp, 1);
    o.geomeanBase = "base";
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = sim::runSweepDriver(o);
    const double took =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    ASSERT_EQ(out.exitCode, 0) << out.error;
    // The straggler sleeps kLingerDeciseconds holding the pipe write
    // ends; the driver must finalize on the shard's own exit plus the
    // short drain grace instead.
    EXPECT_LT(took, kFinalizeBoundSeconds);
    EXPECT_EQ(readFile(out.mergedArtifactPath),
              referenceArtifact().toJson());
}

TEST(SweepDriverRun, RetryRecoversATransientShardFailure)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "flaky");
    EnvGuard marker("CONOPT_DRIVER_TEST_MARKER", tmp.path.string());

    auto o = childDriverOptions(tmp, 2);
    o.retries = 1;
    o.geomeanBase = "base";
    const auto out = sim::runSweepDriver(o);
    ASSERT_EQ(out.exitCode, 0) << out.error;
    for (const auto &s : out.shards) {
        EXPECT_TRUE(s.ok) << "shard " << s.index;
        EXPECT_EQ(s.attempts, 2u) << "shard " << s.index;
    }
    // The recovered run's merge is still exactly the unsharded run.
    EXPECT_EQ(readFile(out.mergedArtifactPath),
              referenceArtifact().toJson());
}

TEST(SweepDriverRun, TransientFailureWithoutRetryBudgetStaysFatal)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "flaky");
    EnvGuard marker("CONOPT_DRIVER_TEST_MARKER", tmp.path.string());

    auto o = childDriverOptions(tmp, 2);
    o.retries = 0;
    const auto out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    for (const auto &s : out.shards) {
        EXPECT_FALSE(s.ok);
        EXPECT_EQ(s.attempts, 1u);
        EXPECT_NE(s.outputTail.find("transient failure"),
                  std::string::npos);
    }
}

TEST(SweepDriverRun, ShardThatWritesNoArtifactIsAHardError)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "bench");

    // --no-artifact makes every shard exit 0 without writing its file:
    // the classic silently-thinner-merge hazard the driver must catch.
    auto o = childDriverOptions(tmp, 2);
    o.benchArgs = {"--no-artifact"};
    const auto out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    EXPECT_NE(out.error.find("missing"), std::string::npos) << out.error;
    for (const auto &s : out.shards)
        EXPECT_TRUE(s.ok) << "the shards themselves exited 0";
}

TEST(SweepDriverRun, BenchFlagErrorSurfacesInCapturedOutput)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "bench");

    auto o = childDriverOptions(tmp, 2);
    o.benchArgs = {"--definitely-bogus-flag"};
    o.retries = 0;
    const auto out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    ASSERT_EQ(out.shards.size(), 2u);
    EXPECT_EQ(out.shards[0].exitStatus, 2);
    EXPECT_NE(out.shards[0].outputTail.find("unknown argument"),
              std::string::npos)
        << out.shards[0].outputTail;
}

TEST(SweepDriverRun, MissingBenchBinaryFailsBeforeSpawning)
{
    TempDir tmp;
    sim::DriverOptions o;
    o.benchPath = tmp.file("no_such_bench");
    o.benchName = "no_such_bench";
    o.shards = 2;
    o.run.artifactDir = tmp.path.string();
    const auto out = sim::runSweepDriver(o);
    EXPECT_EQ(out.exitCode, 2);
    EXPECT_NE(out.error.find("not found"), std::string::npos)
        << out.error;
    EXPECT_TRUE(out.shards.empty());
}

TEST(SweepDriverRun, LauncherTemplateDrivesShardsEndToEnd)
{
    TempDir tmp;
    EnvGuard mode("CONOPT_DRIVER_TEST_CHILD", "bench");

    // A real wrapper template (sh -c path): env-prefix the command.
    auto o = childDriverOptions(tmp, 2);
    o.launcher = "CONOPT_THREADS=1 {cmd}";
    o.geomeanBase = "base";
    const auto out = sim::runSweepDriver(o);
    ASSERT_EQ(out.exitCode, 0) << out.error;
    // Results are scheduling-independent, but the artifact records the
    // CONOPT_THREADS the shard saw — proof the template took effect.
    sim::BenchArtifact merged;
    std::string err;
    ASSERT_TRUE(sim::loadArtifact(out.mergedArtifactPath, &merged, &err))
        << err;
    EXPECT_EQ(merged.threads, 1u);
    EXPECT_EQ(merged.jobs.size(), 6u);
}
