/**
 * @file
 * Event-driven wakeup / idle-cycle fast-forward tests.
 *
 * The timing core's host-perf machinery (per-register wake lists, the
 * ready-event scheduler, and run()'s idle-cycle fast-forward) must be
 * invisible in the simulated results: fast-forward on and off have to
 * produce bit-identical SimStats for every workload and machine model,
 * down to the per-cause stall counters that fast-forward replicates
 * arithmetically. These tests pin that equivalence end to end, verify
 * that fast-forward actually skips cycles somewhere (so the
 * equivalence is not vacuous), and unit-test the WakeList container
 * including its fixed-capacity overflow contract.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/pipeline/machine_config.hh"
#include "src/pipeline/ooo_core.hh"
#include "src/sim/session.hh"
#include "src/util/wake_list.hh"
#include "src/workloads/workload.hh"

using namespace conopt;

// ---------------------------------------------------------------------------
// WakeList
// ---------------------------------------------------------------------------

TEST(WakeList, AddAndDrainRoundTripsPerKey)
{
    WakeList wl;
    wl.reset(8, 16);
    EXPECT_EQ(wl.size(), 0u);
    EXPECT_EQ(wl.capacity(), 16u);
    EXPECT_TRUE(wl.empty(3));

    wl.add(3, 100);
    wl.add(3, 101);
    wl.add(5, 200);
    EXPECT_EQ(wl.size(), 3u);
    EXPECT_FALSE(wl.empty(3));
    EXPECT_FALSE(wl.empty(5));
    EXPECT_TRUE(wl.empty(0));

    // Draining one key leaves the others untouched; order within a
    // key is unspecified, so compare as a multiset.
    std::vector<uint64_t> got;
    wl.drain(3, [&](uint64_t v) { got.push_back(v); });
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<uint64_t>{100, 101}));
    EXPECT_TRUE(wl.empty(3));
    EXPECT_FALSE(wl.empty(5));
    EXPECT_EQ(wl.size(), 1u);

    // Draining an empty key is a no-op.
    got.clear();
    wl.drain(3, [&](uint64_t v) { got.push_back(v); });
    EXPECT_TRUE(got.empty());
}

TEST(WakeList, DrainedNodesAreReusedWithoutGrowth)
{
    WakeList wl;
    wl.reset(4, 3);
    // Fill to capacity, drain, and refill repeatedly: the pool must
    // recycle its nodes rather than demand more.
    for (int round = 0; round < 10; ++round) {
        wl.add(0, 1);
        wl.add(1, 2);
        wl.add(1, 3);
        EXPECT_EQ(wl.size(), 3u);
        size_t drained = 0;
        wl.drain(0, [&](uint64_t) { ++drained; });
        wl.drain(1, [&](uint64_t) { ++drained; });
        EXPECT_EQ(drained, 3u);
        EXPECT_EQ(wl.size(), 0u);
    }
    EXPECT_EQ(wl.capacity(), 3u);
}

TEST(WakeList, ResetDropsWaitersAndResizes)
{
    WakeList wl;
    wl.reset(2, 2);
    wl.add(0, 7);
    wl.reset(16, 8);
    EXPECT_EQ(wl.size(), 0u);
    EXPECT_GE(wl.capacity(), 8u);
    for (uint32_t k = 0; k < 16; ++k)
        EXPECT_TRUE(wl.empty(k));
}

TEST(WakeListDeathTest, OverflowIsRejectedNotGrown)
{
    WakeList wl;
    wl.reset(4, 2);
    wl.add(0, 1);
    wl.add(1, 2);
    EXPECT_DEATH(wl.add(2, 3), "WakeList overflow");
}

// ---------------------------------------------------------------------------
// Fast-forward tick equivalence
// ---------------------------------------------------------------------------

namespace {

sim::ProgramPtr
programOf(const std::string &workload, unsigned scale = 1)
{
    const auto &w = workloads::workloadByName(workload);
    return std::make_shared<const assembler::Program>(w.build(scale));
}

/** Every SimStats counter that feeds artifacts, tables, or figures —
 *  including the stall breakdown fast-forward replicates. */
void
expectSameStats(const pipeline::SimStats &x, const pipeline::SimStats &y,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(x.cycles, y.cycles);
    EXPECT_EQ(x.retired, y.retired);
    EXPECT_EQ(x.halted, y.halted);
    EXPECT_EQ(x.branches, y.branches);
    EXPECT_EQ(x.condBranches, y.condBranches);
    EXPECT_EQ(x.mispredicted, y.mispredicted);
    EXPECT_EQ(x.earlyResolvedBranches, y.earlyResolvedBranches);
    EXPECT_EQ(x.earlyRecoveredMispredicts, y.earlyRecoveredMispredicts);
    EXPECT_EQ(x.btbResteers, y.btbResteers);
    EXPECT_EQ(x.loads, y.loads);
    EXPECT_EQ(x.stores, y.stores);
    EXPECT_EQ(x.loadsForwardedFromStoreQ, y.loadsForwardedFromStoreQ);
    EXPECT_EQ(x.mbcMisspecFlushes, y.mbcMisspecFlushes);
    EXPECT_EQ(x.dl1Hits, y.dl1Hits);
    EXPECT_EQ(x.dl1Misses, y.dl1Misses);
    EXPECT_EQ(x.il1Misses, y.il1Misses);
    EXPECT_EQ(x.fetchStallMispredict, y.fetchStallMispredict);
    EXPECT_EQ(x.fetchStallIcache, y.fetchStallIcache);
    EXPECT_EQ(x.fetchStallQueueFull, y.fetchStallQueueFull);
    EXPECT_EQ(x.renameStallRob, y.renameStallRob);
    EXPECT_EQ(x.renameStallDispatchQ, y.renameStallDispatchQ);
    EXPECT_EQ(x.renameStallPregs, y.renameStallPregs);
    EXPECT_EQ(x.dispatchStallSched, y.dispatchStallSched);
    EXPECT_EQ(x.opt.instsRenamed, y.opt.instsRenamed);
    EXPECT_EQ(x.opt.earlyExecuted, y.opt.earlyExecuted);
    EXPECT_EQ(x.opt.movesEliminated, y.opt.movesEliminated);
    EXPECT_EQ(x.opt.branchesResolved, y.opt.branchesResolved);
    EXPECT_EQ(x.opt.memOps, y.opt.memOps);
    EXPECT_EQ(x.opt.loads, y.opt.loads);
    EXPECT_EQ(x.opt.addrKnown, y.opt.addrKnown);
    EXPECT_EQ(x.opt.loadsRemoved, y.opt.loadsRemoved);
    EXPECT_EQ(x.opt.loadsSynthesized, y.opt.loadsSynthesized);
    EXPECT_EQ(x.opt.mbcMisspecs, y.opt.mbcMisspecs);
    EXPECT_EQ(x.opt.symRewrites, y.opt.symRewrites);
    EXPECT_EQ(x.opt.depthBlocked, y.opt.depthBlocked);
    EXPECT_EQ(x.opt.strengthReductions, y.opt.strengthReductions);
    EXPECT_EQ(x.opt.branchInferences, y.opt.branchInferences);
    EXPECT_EQ(x.mbc.lookups, y.mbc.lookups);
    EXPECT_EQ(x.mbc.hits, y.mbc.hits);
    EXPECT_EQ(x.mbc.inserts, y.mbc.inserts);
    EXPECT_EQ(x.mbc.evictions, y.mbc.evictions);
    EXPECT_EQ(x.mbc.invalidations, y.mbc.invalidations);
    EXPECT_EQ(x.mbc.flushes, y.mbc.flushes);
}

struct NamedConfig
{
    const char *name;
    pipeline::MachineConfig cfg;
};

std::vector<NamedConfig>
machineModels()
{
    return {
        {"baseline", pipeline::MachineConfig::baseline()},
        {"optimized", pipeline::MachineConfig::optimized()},
        {"fetchBound", pipeline::MachineConfig::fetchBound(true)},
        {"execBound", pipeline::MachineConfig::execBound(true)},
    };
}

} // namespace

TEST(FastForward, OnAndOffProduceIdenticalStatsAcrossModels)
{
    const std::vector<std::string> workloads{"mcf", "gcc", "untst"};
    uint64_t totalSkipped = 0;

    sim::SimSession ffOn, ffOff;
    ffOff.setFastForward(false);
    ASSERT_FALSE(ffOff.fastForwardEnabled());
    ASSERT_TRUE(ffOn.fastForwardEnabled()) << "fast-forward defaults on";

    for (const auto &wl : workloads) {
        const auto program = programOf(wl);
        for (const auto &[name, cfg] : machineModels()) {
            const auto fast = ffOn.simulate(program, cfg);
            const uint64_t ticks = ffOn.core().ticksExecuted();
            const auto slow = ffOff.simulate(program, cfg);

            const std::string what = wl + "/" + name;
            expectSameStats(fast.stats, slow.stats, what);
            EXPECT_EQ(fast.instructions, slow.instructions) << what;
            EXPECT_EQ(fast.halted, slow.halted) << what;

            // The per-cycle reference path ticks once per cycle; the
            // fast-forwarding run never ticks more often.
            EXPECT_EQ(ffOff.core().ticksExecuted(), slow.stats.cycles)
                << what;
            EXPECT_LE(ticks, fast.stats.cycles) << what;
            totalSkipped += fast.stats.cycles - ticks;
        }
    }
    EXPECT_GT(totalSkipped, 0u)
        << "fast-forward never skipped a cycle: the equivalence above "
           "tested nothing";
}

// ---------------------------------------------------------------------------
// Store-queue scan windowing equivalence
// ---------------------------------------------------------------------------

TEST(StoreWindow, OnAndOffProduceIdenticalStatsAcrossModels)
{
    // The address-hashed store window replaces the full store-queue
    // scan on every load issue; windowed and full scans must agree on
    // every forwarding/blocking decision, hence on every counter.
    const std::vector<std::string> workloads{"mcf", "gcc", "untst"};
    uint64_t totalForwarded = 0, totalLoads = 0;

    sim::SimSession windowed, full;
    full.setStoreWindow(false);
    ASSERT_FALSE(full.storeWindowEnabled());
    ASSERT_TRUE(windowed.storeWindowEnabled())
        << "store windowing defaults on";

    for (const auto &wl : workloads) {
        const auto program = programOf(wl);
        for (const auto &[name, cfg] : machineModels()) {
            const auto fast = windowed.simulate(program, cfg);
            const auto slow = full.simulate(program, cfg);
            const std::string what = wl + "/" + name;
            expectSameStats(fast.stats, slow.stats, what);
            EXPECT_EQ(fast.instructions, slow.instructions) << what;
            EXPECT_EQ(fast.halted, slow.halted) << what;
            totalForwarded += fast.stats.loadsForwardedFromStoreQ;
            totalLoads += fast.stats.loads;
        }
    }
    // Non-vacuity: the grid must actually exercise loads that meet
    // in-flight stores, or the scan equivalence above tested nothing.
    EXPECT_GT(totalLoads, 0u);
    EXPECT_GT(totalForwarded, 0u)
        << "no load ever forwarded from the store queue across the "
           "whole grid";
}

TEST(StoreWindow, StickyAcrossSessionReuse)
{
    // setStoreWindow survives reset()/simulate() until changed, and
    // flipping it between runs on the SAME warm session still yields
    // identical results (the window is rebuilt from scratch by reset).
    const auto program = programOf("art");
    const auto cfg = pipeline::MachineConfig::optimized();

    sim::SimSession s;
    const auto first = s.simulate(program, cfg);
    s.setStoreWindow(false);
    EXPECT_FALSE(s.storeWindowEnabled());
    EXPECT_FALSE(s.core().storeWindowEnabled());
    const auto slow = s.simulate(program, cfg);
    s.setStoreWindow(true);
    const auto again = s.simulate(program, cfg);

    expectSameStats(first.stats, slow.stats, "warm window-off rerun");
    expectSameStats(first.stats, again.stats, "warm window-on rerun");
}

TEST(FastForward, StickyAcrossSessionReuse)
{
    // setFastForward survives reset()/simulate() until changed, and
    // flipping it between runs on the SAME warm session still yields
    // identical results (the skip logic keeps no cross-run state).
    const auto program = programOf("art");
    const auto cfg = pipeline::MachineConfig::optimized();

    sim::SimSession s;
    const auto first = s.simulate(program, cfg);
    s.setFastForward(false);
    const auto slow = s.simulate(program, cfg);
    EXPECT_FALSE(s.core().fastForwardEnabled());
    EXPECT_EQ(s.core().ticksExecuted(), slow.stats.cycles);
    s.setFastForward(true);
    const auto again = s.simulate(program, cfg);

    expectSameStats(first.stats, slow.stats, "warm ff-off rerun");
    expectSameStats(first.stats, again.stats, "warm ff-on rerun");
}
