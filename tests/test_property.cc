/**
 * @file
 * Property-based tests: randomly generated (but always terminating)
 * programs are run through the functional emulator and the timing model
 * under a sweep of optimizer configurations. Because the optimizer
 * cross-checks every derived value against the oracle (strict checking,
 * paper section 4.2), simply completing these runs is a strong
 * correctness statement; the tests additionally assert structural
 * invariants on the statistics.
 */

#include <gtest/gtest.h>

#include "src/arch/emulator.hh"
#include "src/asm/assembler.hh"
#include "src/sim/simulator.hh"
#include "src/util/rng.hh"

using namespace conopt;
using namespace conopt::assembler;

namespace {

/**
 * Generate a random structured program: an outer counted loop whose body
 * mixes ALU ops, loads/stores into a scratch array (both statically and
 * data-dependently addressed), short forward branches, and occasional
 * multiplies. Always terminates.
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    Assembler a;
    const uint64_t scratch = a.dataQuads([&] {
        std::vector<uint64_t> v(64);
        for (auto &q : v)
            q = rng.next() & 0xffff;
        return v;
    }());

    const Reg base = R16, counter = R17, sum = R18, tmp = R19;
    a.li(base, int64_t(scratch));
    a.li(counter, int64_t(rng.nextRange(40, 120)));
    a.li(sum, 0);

    a.label("outer");
    const int body = int(rng.nextRange(12, 40));
    int fwd_label = 0;
    for (int i = 0; i < body; ++i) {
        const Reg rs = Reg(1 + rng.nextBelow(12));
        const Reg rt = Reg(1 + rng.nextBelow(12));
        const Reg rd = Reg(1 + rng.nextBelow(12));
        switch (rng.nextBelow(10)) {
          case 0:
            a.addq(rs, int64_t(rng.nextRange(-64, 64)), rd);
            break;
          case 1:
            a.subq(rs, int64_t(rng.nextRange(-64, 64)), rd);
            break;
          case 2:
            a.xor_(rs, rt, rd);
            break;
          case 3:
            a.sll(rs, int64_t(rng.nextBelow(4)), rd);
            break;
          case 4: { // statically addressed memory
            const int64_t off = int64_t(rng.nextBelow(64)) * 8;
            if (rng.nextBool())
                a.ldq(rd, off, base);
            else
                a.stq(rs, off, base);
            break;
          }
          case 5: { // data-dependent memory
            a.and_(rs, 63, tmp);
            a.sll(tmp, 3, tmp);
            a.addq(base, tmp, tmp);
            if (rng.nextBool())
                a.ldq(rd, 0, tmp);
            else
                a.stq(rt, 0, tmp);
            break;
          }
          case 6: { // short forward branch
            const std::string l = "f" + std::to_string(seed) + "_" +
                                  std::to_string(fwd_label++);
            if (rng.nextBool())
                a.beq(rs, l);
            else
                a.bge(rs, l);
            a.addq(sum, 1, sum);
            a.label(l);
            break;
          }
          case 7:
            a.mulq(rs, int64_t(rng.nextRange(1, 16)), rd);
            break;
          case 8:
            a.cmplt(rs, rt, rd);
            break;
          case 9:
            a.mov(rs, rd);
            break;
        }
    }
    a.addq(sum, 1, sum);
    a.subq(counter, 1, counter);
    a.bne(counter, "outer");
    // Publish a checksum so runs can be compared.
    a.li(tmp, 0xf00000);
    a.stq(sum, 0, tmp);
    a.halt();
    return a.finish();
}

struct ConfigCase
{
    const char *name;
    pipeline::MachineConfig config;
};

std::vector<ConfigCase>
configSweep()
{
    std::vector<ConfigCase> cases;
    cases.push_back({"baseline", pipeline::MachineConfig::baseline()});
    cases.push_back({"optimized", pipeline::MachineConfig::optimized()});
    {
        auto oc = core::OptimizerConfig::feedbackOnly();
        cases.push_back(
            {"feedback_only", pipeline::MachineConfig::withOptimizer(oc)});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.addChainDepth = 3;
        oc.allowChainedMem = true;
        cases.push_back(
            {"depth3_mem", pipeline::MachineConfig::withOptimizer(oc)});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.extraStages = 4;
        cases.push_back(
            {"opt_latency4", pipeline::MachineConfig::withOptimizer(oc)});
    }
    {
        auto cfg = pipeline::MachineConfig::optimized();
        cfg.vfbDelay = 10;
        cases.push_back({"vfb_delay10", cfg});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.mbcFlushOnUnknownStore = true;
        cases.push_back(
            {"mbc_flush", pipeline::MachineConfig::withOptimizer(oc)});
    }
    {
        auto oc = core::OptimizerConfig::full();
        oc.mbc.entries = 32;
        oc.mbc.assoc = 2;
        cases.push_back(
            {"small_mbc", pipeline::MachineConfig::withOptimizer(oc)});
    }
    cases.push_back({"exec_bound",
                     pipeline::MachineConfig::execBound(true)});
    cases.push_back({"fetch_bound",
                     pipeline::MachineConfig::fetchBound(true)});
    return cases;
}

class RandomProgramTest : public ::testing::TestWithParam<uint64_t>
{
};

} // namespace

TEST_P(RandomProgramTest, AllConfigsRetireTheArchitecturalStream)
{
    const auto program = randomProgram(GetParam());
    arch::Emulator ref(program, 1u << 22);
    ref.run();
    ASSERT_TRUE(ref.halted());
    const uint64_t ref_count = ref.instCount();
    const uint64_t ref_sum = ref.memory().readQuad(0xf00000);

    for (const auto &c : configSweep()) {
        SCOPED_TRACE(c.name);
        const auto r = sim::simulate(program, c.config, 1u << 22);
        EXPECT_TRUE(r.halted);
        EXPECT_EQ(r.instructions, ref_count);
        EXPECT_EQ(r.stats.retired, ref_count);
        // Structural invariants.
        EXPECT_GE(r.stats.cycles, ref_count / 6)
            << "IPC cannot beat the retire width";
        EXPECT_LE(r.stats.opt.earlyExecuted, r.stats.retired);
        EXPECT_LE(r.stats.opt.loadsRemoved, r.stats.opt.loads);
        EXPECT_LE(r.stats.opt.addrKnown, r.stats.opt.memOps);
        EXPECT_LE(r.stats.earlyRecoveredMispredicts,
                  r.stats.mispredicted);
        EXPECT_LE(r.stats.earlyResolvedBranches, r.stats.branches);
    }
    // Emulator determinism: re-run and compare the checksum.
    arch::Emulator again(program, 1u << 22);
    again.run();
    EXPECT_EQ(again.memory().readQuad(0xf00000), ref_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(uint64_t(1), uint64_t(13)));

TEST(PropertyInvariant, OptimizerNeverSlowsFetchBoundLoopMuch)
{
    // A pathological all-constant loop: the optimizer must never be
    // more than a few percent *slower* than baseline (the cost is just
    // the two extra stages on each misprediction).
    Assembler a;
    a.li(R1, 3000);
    a.label("l");
    a.subq(R1, 1, R1);
    a.bne(R1, "l");
    a.halt();
    Program p = a.finish();
    const auto base =
        sim::simulate(p, pipeline::MachineConfig::baseline());
    const auto opt =
        sim::simulate(p, pipeline::MachineConfig::optimized());
    EXPECT_LT(double(opt.stats.cycles),
              1.05 * double(base.stats.cycles));
}

TEST(PropertyInvariant, MbcSpeculationIsSafeUnderAliasedStores)
{
    // Stores through an unpredictable pointer alias a location that was
    // MBC-forwarded: the speculative-MBC recovery path must keep the
    // machine architecturally correct (strict checking enforces it).
    Assembler a;
    const uint64_t cells = a.dataQuads({5, 6, 7, 8});
    const uint64_t idxs = a.dataQuads([] {
        Rng rng(321);
        std::vector<uint64_t> v(256);
        for (auto &q : v)
            q = rng.nextBelow(4) * 8;
        return v;
    }());
    a.li(R1, int64_t(cells));
    a.li(R2, int64_t(idxs));
    a.li(R3, 256);
    a.li(R9, 0);
    a.label("loop");
    a.ldq(R4, 0, R2);      // random slot offset (unknown at rename)
    a.addq(R1, R4, R5);    // store address: data-dependent
    a.addq(R9, 3, R9);
    a.stq(R9, 0, R5);      // unknown-address store
    a.ldq(R6, 0, R1);      // load that may hit a stale MBC entry
    a.ldq(R7, 8, R1);
    a.addq(R6, R7, R8);
    a.addq(R2, 8, R2);
    a.subq(R3, 1, R3);
    a.bne(R3, "loop");
    a.halt();
    Program p = a.finish();
    arch::Emulator ref(p);
    ref.run();
    const auto r =
        sim::simulate(p, pipeline::MachineConfig::optimized());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.instructions, ref.instCount());
    // With this much aliasing, some misspeculation should be observed
    // and recovered from.
    EXPECT_GT(r.stats.opt.mbcMisspecs + r.stats.mbc.invalidations, 0u);
}
