/**
 * @file
 * Tests for the branch predictor (gshare + BTB + RAS) and the cache
 * hierarchy.
 */

#include <gtest/gtest.h>

#include "src/branch/branch_predictor.hh"
#include "src/cache/cache.hh"

using namespace conopt;

namespace {

isa::Instruction
condBranch()
{
    isa::Instruction i;
    i.op = isa::Opcode::BNE;
    return i;
}

} // namespace

TEST(Gshare, LearnsABiasedBranch)
{
    branch::BranchPredictor bp(branch::PredictorConfig{});
    const uint64_t pc = 0x10040;
    const auto inst = condBranch();
    // Warm up: always taken; repair history on mispredicts exactly as
    // the pipeline front end does.
    for (int i = 0; i < 64; ++i) {
        auto pred = bp.predict(pc, inst, pc + 4);
        if (pred.taken != true)
            bp.recover(pred, true);
        bp.update(pc, inst, pred, true, pc + 64);
    }
    auto pred = bp.predict(pc, inst, pc + 4);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetValid);
    EXPECT_EQ(pred.target, pc + 64);
    bp.update(pc, inst, pred, true, pc + 64);
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory)
{
    branch::BranchPredictor bp(branch::PredictorConfig{});
    const uint64_t pc = 0x10080;
    const auto inst = condBranch();
    int correct = 0;
    bool dir = false;
    for (int i = 0; i < 400; ++i) {
        auto pred = bp.predict(pc, inst, pc + 4);
        if (i >= 200 && pred.taken == dir)
            ++correct;
        if (pred.taken != dir)
            bp.recover(pred, dir);
        bp.update(pc, inst, pred, dir, pc + 32);
        dir = !dir;
    }
    // With history, an alternating branch becomes ~perfectly predictable.
    EXPECT_GT(correct, 190);
}

TEST(Btb, TaggedNoAliasingFalseHits)
{
    branch::PredictorConfig cfg;
    cfg.btbEntries = 16;
    branch::BranchPredictor bp(cfg);
    const auto inst = condBranch();
    const uint64_t pc_a = 0x10000;
    const uint64_t pc_b = pc_a + 16 * isa::instBytes; // same BTB set
    auto pa = bp.predict(pc_a, inst, pc_a + 4);
    bp.update(pc_a, inst, pa, true, 0x20000);
    // pc_b aliases pc_a's entry but the tag must reject it.
    for (int i = 0; i < 8; ++i) {
        auto pb = bp.predict(pc_b, inst, pc_b + 4);
        bp.update(pc_b, inst, pb, true, 0x30000);
        if (pb.taken && pb.targetValid) {
            EXPECT_EQ(pb.target, 0x30000u);
        }
    }
}

TEST(Ras, PredictsReturns)
{
    branch::BranchPredictor bp(branch::PredictorConfig{});
    isa::Instruction call;
    call.op = isa::Opcode::BSR;
    isa::Instruction ret;
    ret.op = isa::Opcode::RET;

    auto pc_call = 0x10000u;
    auto pred_call = bp.predict(pc_call, call, pc_call + 4);
    (void)pred_call;
    auto pred_ret = bp.predict(0x20000, ret, 0x20004);
    EXPECT_TRUE(pred_ret.targetValid);
    EXPECT_EQ(pred_ret.target, pc_call + 4);
}

TEST(Ras, NestedCalls)
{
    branch::BranchPredictor bp(branch::PredictorConfig{});
    isa::Instruction call;
    call.op = isa::Opcode::JSR;
    isa::Instruction ret;
    ret.op = isa::Opcode::RET;
    bp.predict(0x1000, call, 0x1004);
    bp.predict(0x2000, call, 0x2004);
    auto r1 = bp.predict(0x3000, ret, 0x3004);
    EXPECT_EQ(r1.target, 0x2004u);
    auto r2 = bp.predict(0x3004, ret, 0x3008);
    EXPECT_EQ(r2.target, 0x1004u);
}

TEST(Cache, HitAfterFill)
{
    cache::Cache c({1024, 2, 64, 1});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103f)); // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2 sets x 2 ways, 64B lines: lines 0,2,4 map to set 0.
    cache::Cache c({256, 2, 64, 1});
    EXPECT_FALSE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64));
    EXPECT_TRUE(c.access(0 * 64));  // touch line 0: line 2 becomes LRU
    EXPECT_FALSE(c.access(4 * 64)); // evicts line 2
    EXPECT_TRUE(c.access(0 * 64));
    EXPECT_FALSE(c.access(2 * 64)); // line 2 was evicted
}

TEST(Cache, FlushInvalidatesEverything)
{
    cache::Cache c({1024, 2, 64, 1});
    c.access(0x0);
    c.access(0x40);
    c.flush();
    EXPECT_FALSE(c.probe(0x0));
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Hierarchy, LatencyComposition)
{
    cache::Hierarchy h{};
    const cache::HierarchyConfig cfg{};
    // Cold access: L1 miss + L2 miss + memory.
    const unsigned cold = h.accessData(0x5000);
    EXPECT_EQ(cold, cfg.l1d.latency + cfg.l2.latency + cfg.memLatency);
    // Warm: L1 hit.
    EXPECT_EQ(h.accessData(0x5000), cfg.l1d.latency);
    // L1-evicted but L2-resident lines cost L1+L2.
    // Fill enough distinct lines mapping to the same L1 set to evict.
    const uint64_t l1_span = cfg.l1d.sizeBytes / cfg.l1d.assoc;
    h.accessData(0x5000 + l1_span);
    h.accessData(0x5000 + 2 * l1_span);
    const unsigned warm_l2 = h.accessData(0x5000);
    EXPECT_EQ(warm_l2, cfg.l1d.latency + cfg.l2.latency);
}

TEST(Hierarchy, InstAndDataSidesAreSeparateL1s)
{
    cache::Hierarchy h{};
    const cache::HierarchyConfig cfg{};
    h.accessInst(0x9000);
    // The data side must still miss L1 but hit the (unified) L2.
    EXPECT_EQ(h.accessData(0x9000), cfg.l1d.latency + cfg.l2.latency);
}
