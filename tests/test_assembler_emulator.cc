/**
 * @file
 * Tests for the assembler (labels, fixups, data layout) and the
 * functional emulator (instruction semantics end to end).
 */

#include <gtest/gtest.h>

#include "src/arch/emulator.hh"
#include "src/asm/assembler.hh"

using namespace conopt;
using namespace conopt::assembler;

namespace {

arch::Emulator
runProgram(Program &&p, uint64_t max_insts = 1u << 20)
{
    static std::vector<Program> keep_alive;
    keep_alive.push_back(std::move(p));
    arch::Emulator emu(keep_alive.back(), max_insts);
    emu.run();
    return emu;
}

} // namespace

TEST(Assembler, LabelsAndBranches)
{
    Assembler a;
    a.li(R1, 3);
    a.li(R2, 0);
    a.label("loop");
    a.addq(R2, 10, R2);
    a.subq(R1, 1, R1);
    a.bne(R1, "loop");
    a.halt();
    Program p = a.finish();
    EXPECT_EQ(p.code.size(), 6u);
    // The bne target must resolve to the loop label's address.
    EXPECT_EQ(uint64_t(p.code[4].imm), p.pcOf(2));
}

TEST(Assembler, DuplicateLabelIsFatal)
{
    Assembler a;
    a.label("x");
    EXPECT_EXIT(a.label("x"), ::testing::ExitedWithCode(1),
                "duplicate label");
}

TEST(Assembler, DataSegmentsLayout)
{
    Assembler a;
    const uint64_t q = a.dataQuads({1, 2, 3});
    const uint64_t r = a.allocQuads(4);
    EXPECT_GE(r, q + 24);
    a.pokeQuad(r + 8, 77);
    a.halt();
    Program p = a.finish();
    arch::Emulator emu(p);
    EXPECT_EQ(emu.memory().readQuad(q + 8), 2u);
    EXPECT_EQ(emu.memory().readQuad(r + 8), 77u);
    EXPECT_EQ(emu.memory().readQuad(r), 0u);
}

TEST(Assembler, DataLabelBuildsJumpTables)
{
    Assembler a;
    const uint64_t jt = a.allocQuads(1);
    a.li(R1, int64_t(jt));
    a.ldq(R2, 0, R1);
    a.jmp(R2);
    a.li(R3, 111); // skipped
    a.label("target");
    a.li(R3, 222);
    a.halt();
    a.dataLabel(jt, "target");
    arch::Emulator emu = runProgram(a.finish());
    EXPECT_EQ(emu.state().readInt(R3), 222u);
}

TEST(Emulator, ZeroRegisterSemantics)
{
    Assembler a;
    a.li(ZERO, 42);       // write discarded
    a.addq(ZERO, 5, R1);  // reads as zero
    a.halt();
    arch::Emulator emu = runProgram(a.finish());
    EXPECT_EQ(emu.state().readInt(R1), 5u);
    EXPECT_EQ(emu.state().readInt(ZERO), 0u);
}

TEST(Emulator, MemoryAccessSizes)
{
    Assembler a;
    const uint64_t buf = a.allocQuads(2);
    a.li(R1, int64_t(buf));
    a.li(R2, -1);
    a.stq(R2, 0, R1);
    a.li(R3, 0x1234);
    a.stl(R3, 0, R1);     // overwrite low 4 bytes
    a.ldq(R4, 0, R1);     // 0xffffffff00001234
    a.ldl(R5, 0, R1);     // sext32 -> 0x1234
    a.ldbu(R6, 4, R1);    // 0xff
    a.li(R7, 0xab);
    a.stb(R7, 7, R1);
    a.ldbu(R8, 7, R1);
    a.halt();
    arch::Emulator emu = runProgram(a.finish());
    EXPECT_EQ(emu.state().readInt(R4), 0xffffffff00001234ull);
    EXPECT_EQ(emu.state().readInt(R5), 0x1234u);
    EXPECT_EQ(emu.state().readInt(R6), 0xffu);
    EXPECT_EQ(emu.state().readInt(R8), 0xabu);
}

TEST(Emulator, SignExtendingLoad)
{
    Assembler a;
    const uint64_t buf = a.allocQuads(1);
    a.li(R1, int64_t(buf));
    a.li(R2, int64_t(0x80000000));
    a.stl(R2, 0, R1);
    a.ldl(R3, 0, R1);
    a.halt();
    arch::Emulator emu = runProgram(a.finish());
    EXPECT_EQ(emu.state().readInt(R3),
              uint64_t(int64_t(int32_t(0x80000000))));
}

TEST(Emulator, CallAndReturn)
{
    Assembler a;
    a.li(R1, 5);
    a.bsr(RA, "double_it");
    a.addq(R1, 100, R1);  // executes after return
    a.halt();
    a.label("double_it");
    a.addq(R1, R1, R1);
    a.ret();
    arch::Emulator emu = runProgram(a.finish());
    EXPECT_EQ(emu.state().readInt(R1), 110u);
}

TEST(Emulator, IndirectCall)
{
    Assembler b;
    const uint64_t cell = b.allocQuads(1);
    b.dataLabel(cell, "fn");
    b.li(R3, int64_t(cell));
    b.ldq(R4, 0, R3);
    b.jsr(RA, R4);
    b.addq(R2, 1, R2);
    b.halt();
    b.label("fn");
    b.li(R2, 40);
    b.ret();
    arch::Emulator emu = runProgram(b.finish());
    EXPECT_EQ(emu.state().readInt(R2), 41u);
}

TEST(Emulator, FactorialViaLoop)
{
    Assembler a;
    a.li(R1, 10);  // n
    a.li(R2, 1);   // acc
    a.label("loop");
    a.mulq(R2, R1, R2);
    a.subq(R1, 1, R1);
    a.bgt(R1, "loop");
    a.halt();
    arch::Emulator emu = runProgram(a.finish());
    EXPECT_EQ(emu.state().readInt(R2), 3628800u);
}

TEST(Emulator, FloatingPointFlow)
{
    Assembler a;
    const uint64_t buf = a.dataDoubles({2.0, 8.0});
    a.li(R1, int64_t(buf));
    a.ldt(F1, 0, R1);
    a.ldt(F2, 8, R1);
    a.addt(F1, F2, F3);   // 10.0
    a.mult(F3, F3, F4);   // 100.0
    a.sqrtt(F4, F5);      // 10.0
    a.cvttq(F5, R2);
    a.cmpteq(F5, F3, F6);
    a.fbne(F6, "same");
    a.li(R3, 0);
    a.br("end");
    a.label("same");
    a.li(R3, 1);
    a.label("end");
    a.halt();
    arch::Emulator emu = runProgram(a.finish());
    EXPECT_EQ(emu.state().readInt(R2), 10u);
    EXPECT_EQ(emu.state().readInt(R3), 1u);
}

TEST(Emulator, InstructionLimitStopsRunaway)
{
    Assembler a;
    a.label("spin");
    a.br("spin");
    arch::Emulator emu = runProgram(a.finish(), 1000);
    EXPECT_TRUE(emu.done());
    EXPECT_FALSE(emu.halted());
    EXPECT_EQ(emu.instCount(), 1000u);
}

TEST(Emulator, DynInstOracleFields)
{
    Assembler a;
    const uint64_t buf = a.dataQuads({123});
    a.li(R1, int64_t(buf));
    a.ldq(R2, 0, R1);
    a.beq(R2, "nope");
    a.addq(R2, 1, R3);
    a.label("nope");
    a.halt();
    Program p = a.finish();
    arch::Emulator emu(p);
    auto li = emu.step();
    EXPECT_EQ(li.result, buf);
    auto ld = emu.step();
    EXPECT_TRUE(ld.inst.isLoad());
    EXPECT_EQ(ld.memAddr, buf);
    EXPECT_EQ(ld.memSize, 8);
    EXPECT_EQ(ld.result, 123u);
    auto br = emu.step();
    EXPECT_FALSE(br.taken);
    EXPECT_EQ(br.nextPc, br.pc + isa::instBytes);
    auto add = emu.step();
    EXPECT_EQ(add.result, 124u);
}

TEST(Memory, PageStraddlingAccess)
{
    arch::Memory mem;
    const uint64_t addr = arch::Memory::pageBytes - 4;
    mem.write(addr, 0x1122334455667788ull, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(addr + 4, 4), 0x11223344u);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(Memory, UnwrittenReadsZero)
{
    arch::Memory mem;
    EXPECT_EQ(mem.read(0x123456, 8), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}
