file(REMOVE_RECURSE
  "CMakeFiles/test_wakeup.dir/tests/test_wakeup.cc.o"
  "CMakeFiles/test_wakeup.dir/tests/test_wakeup.cc.o.d"
  "test_wakeup"
  "test_wakeup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wakeup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
